#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/event_bus_server.h"
#include "net/remote_event_sink.h"
#include "net/socket_channel.h"

namespace orcastream::net {
namespace {

std::vector<uint8_t> RandomBytes(common::Rng* rng, size_t n) {
  std::vector<uint8_t> bytes(n);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng->UniformInt(0, 255));
  }
  return bytes;
}

/// Shuttles until `want` bytes arrived at `to` or progress stalls. Real
/// kernel buffers sit between the endpoints, so a large transfer takes
/// many Send/Receive rounds; PollReadable bounds the wait when the
/// kernel has not made bytes visible yet.
std::vector<uint8_t> PumpAcross(SocketChannel* from, SocketChannel* to,
                                const std::vector<uint8_t>& data,
                                size_t want) {
  std::vector<uint8_t> received;
  size_t sent = 0;
  uint8_t buf[4096];
  int stalls = 0;
  while (received.size() < want && stalls < 1000) {
    bool progressed = false;
    // A zero-size Send still flushes the tx ring — needed once all bytes
    // are staged but the ring has not reached the kernel yet.
    common::Result<size_t> n =
        from->Send(data.data() + sent, data.size() - sent);
    if (!n.ok()) break;
    if (*n > 0) progressed = true;
    sent += *n;
    common::Result<size_t> got = to->Receive(buf, sizeof(buf));
    if (!got.ok()) break;
    if (*got > 0) {
      received.insert(received.end(), buf, buf + *got);
      progressed = true;
    }
    if (!progressed) {
      SocketChannel::PollReadable({to}, /*timeout_ms=*/50);
      ++stalls;
    }
  }
  return received;
}

TEST(SocketTransportTest, PairRoundTripsLargePayloadBothDirections) {
  auto pair = SocketChannel::CreatePair();
  ASSERT_TRUE(pair.ok());
  auto [a, b] = std::move(*pair);

  common::Rng rng(42);
  // Much larger than the socket buffers and the staging rings, so the
  // transfer exercises backpressure (Send accepting partial writes) in
  // both directions.
  std::vector<uint8_t> forward = RandomBytes(&rng, 1 << 20);
  EXPECT_EQ(PumpAcross(a.get(), b.get(), forward, forward.size()), forward);

  std::vector<uint8_t> backward = RandomBytes(&rng, 1 << 20);
  EXPECT_EQ(PumpAcross(b.get(), a.get(), backward, backward.size()), backward);
}

TEST(SocketTransportTest, SendBackpressuresInsteadOfFailingWhenPeerStalls) {
  SocketChannel::Options small;
  small.ring_capacity = 4096;
  auto pair = SocketChannel::CreatePair(small);
  ASSERT_TRUE(pair.ok());
  auto [a, b] = std::move(*pair);

  // Nobody reads from `b`: the kernel buffer and a's tx ring fill, after
  // which Send must return 0 (retry later), not an error.
  std::vector<uint8_t> chunk(4096, 0x5a);
  bool saw_zero = false;
  for (int i = 0; i < 10000; ++i) {
    common::Result<size_t> n = a->Send(chunk.data(), chunk.size());
    ASSERT_TRUE(n.ok());
    if (*n == 0) {
      saw_zero = true;
      break;
    }
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(a->connected());

  // Draining the peer frees the path again: the next Sends first flush
  // the full tx ring into the freed kernel buffer, then accept new bytes.
  uint8_t buf[4096];
  size_t reaccepted = 0;
  for (int i = 0; i < 10000 && reaccepted == 0; ++i) {
    common::Result<size_t> got = b->Receive(buf, sizeof(buf));
    ASSERT_TRUE(got.ok());
    common::Result<size_t> n = a->Send(chunk.data(), chunk.size());
    ASSERT_TRUE(n.ok());
    reaccepted = *n;
  }
  EXPECT_GT(reaccepted, 0u);
}

TEST(SocketTransportTest, ReceiveDrainsInFlightBytesAfterPeerCloses) {
  auto pair = SocketChannel::CreatePair();
  ASSERT_TRUE(pair.ok());
  auto [a, b] = std::move(*pair);

  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  common::Result<size_t> sent = a->Send(payload.data(), payload.size());
  ASSERT_TRUE(sent.ok());
  ASSERT_EQ(*sent, payload.size());
  a->Close();

  // The bytes were in flight when the sender closed; the reader must
  // still get them before seeing the broken-stream error.
  std::vector<uint8_t> received;
  uint8_t buf[64];
  for (int i = 0; i < 100 && received.size() < payload.size(); ++i) {
    SocketChannel::PollReadable({b.get()}, /*timeout_ms=*/50);
    common::Result<size_t> got = b->Receive(buf, sizeof(buf));
    if (!got.ok()) break;
    received.insert(received.end(), buf, buf + *got);
  }
  EXPECT_EQ(received, payload);

  // Once drained, the closed peer surfaces as an error or a dead stream.
  for (int i = 0; i < 100; ++i) {
    common::Result<size_t> got = b->Receive(buf, sizeof(buf));
    if (!got.ok() || !b->connected()) return;  // broken surfaced
    ASSERT_EQ(*got, 0u);
    SocketChannel::PollReadable({b.get()}, /*timeout_ms=*/10);
  }
  FAIL() << "peer close never surfaced on the receive path";
}

TEST(SocketTransportTest, UnixListenerAcceptsAndCarriesSession) {
  std::string path = ::testing::TempDir() + "orcastream_sock_test.sock";
  auto listener = SocketListener::ListenUnix(path);
  ASSERT_TRUE(listener.ok());

  auto client = SocketChannel::ConnectUnix(path);
  ASSERT_TRUE(client.ok());

  std::unique_ptr<SocketChannel> accepted;
  for (int i = 0; i < 100 && accepted == nullptr; ++i) {
    common::Result<std::unique_ptr<SocketChannel>> got = (*listener)->Accept();
    ASSERT_TRUE(got.ok());
    accepted = std::move(*got);
  }
  ASSERT_NE(accepted, nullptr);

  common::Rng rng(7);
  std::vector<uint8_t> data = RandomBytes(&rng, 64 * 1024);
  EXPECT_EQ(PumpAcross(client->get(), accepted.get(), data, data.size()),
            data);
}

TEST(SocketTransportTest, TcpListenerAcceptsOnEphemeralPort) {
  auto listener = SocketListener::ListenTcp();
  ASSERT_TRUE(listener.ok());
  ASSERT_GT((*listener)->port(), 0);

  auto client = SocketChannel::ConnectTcp((*listener)->port());
  ASSERT_TRUE(client.ok());

  std::unique_ptr<SocketChannel> accepted;
  for (int i = 0; i < 100 && accepted == nullptr; ++i) {
    common::Result<std::unique_ptr<SocketChannel>> got = (*listener)->Accept();
    ASSERT_TRUE(got.ok());
    accepted = std::move(*got);
  }
  ASSERT_NE(accepted, nullptr);

  common::Rng rng(11);
  std::vector<uint8_t> data = RandomBytes(&rng, 64 * 1024);
  EXPECT_EQ(PumpAcross(client->get(), accepted.get(), data, data.size()),
            data);
}

/// The full session stack — sink, server, heartbeats, sequencing — over a
/// real socketpair instead of the in-process loopback. Delivery is no
/// longer inline (the kernel sits in the middle), so events apply on pump
/// ticks; the invariant is exactly-once application and a drained journal.
TEST(SocketTransportTest, SessionStackRunsOverRealSocketPair) {
  EventBusServer server({}, nullptr);
  RemoteEventSink sink(
      {}, [&server]() -> std::unique_ptr<Channel> {
        auto pair = SocketChannel::CreatePair();
        if (!pair.ok()) return nullptr;
        auto [client_end, server_end] = std::move(*pair);
        server.Accept(std::move(server_end), 0.0);
        return std::move(client_end);
      });

  double now = 0;
  auto pump_both = [&] {
    now += 0.05;
    sink.Pump(now);
    server.Pump(now);
  };
  for (int i = 0; i < 10 && !sink.established(); ++i) pump_both();
  ASSERT_TRUE(sink.established());

  runtime::PeFailureNotice notice;
  notice.app_name = "app";
  notice.reason = "socket path";
  for (int i = 0; i < 25; ++i) {
    sink.OnPeFailure(notice);
    sink.InjectUserEvent("probe", {{"i", std::to_string(i)}});
  }
  for (int i = 0; i < 200 && sink.unacked() > 0; ++i) pump_both();

  EXPECT_EQ(server.events_applied(), 50u);
  EXPECT_EQ(server.last_applied(), 50u);
  EXPECT_EQ(sink.acked_seq(), 50u);
  EXPECT_EQ(sink.unacked(), 0u);
  EXPECT_EQ(server.duplicates_dropped(), 0u);
  EXPECT_EQ(sink.connections_dropped(), 0u);
}

}  // namespace
}  // namespace orcastream::net
