#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "harness/scenario.h"
#include "harness/scenario_env.h"
#include "harness/soak_driver.h"
#include "net/faulty_channel.h"
#include "net/loopback_channel.h"
#include "orca/event_scope.h"
#include "orca/orca_context.h"
#include "tests/test_util.h"

namespace orcastream::net {
namespace {

using common::StrFormat;
using orcastream::testing::FlattenJournal;

/// One scripted detection event: either a synthetic PE failure on one of
/// several application lanes, or a user event (residual lane).
struct SyntheticEvent {
  double at = 0;
  bool user = false;
  runtime::PeFailureNotice notice;
  std::string user_name;
  std::map<std::string, std::string> attributes;
};

/// The workload is generated once from its own fixed seed so every run —
/// the in-process oracle and each fault-seeded remote run — injects the
/// exact same event script. Only the transport faults vary by seed.
std::vector<SyntheticEvent> MakeWorkload() {
  common::Rng rng(9001);
  const char* apps[] = {"alpha", "beta", "gamma"};
  std::vector<SyntheticEvent> events;
  double t = 1.0;
  for (int i = 0; i < 150; ++i) {
    t += rng.UniformDouble(0.05, 0.6);
    SyntheticEvent event;
    event.at = t;
    if (rng.Bernoulli(0.25)) {
      event.user = true;
      event.user_name = "cmd" + std::to_string(rng.UniformInt(0, 5));
      event.attributes = {{"arg", std::to_string(i)}};
    } else {
      runtime::PeFailureNotice& notice = event.notice;
      notice.job = common::JobId(rng.UniformInt(1, 3));
      notice.app_name = apps[rng.UniformInt(0, 2)];
      notice.pe = common::PeId(rng.UniformInt(1, 40));
      notice.host = common::HostId(rng.UniformInt(0, 7));
      notice.reason = "fault" + std::to_string(rng.UniformInt(0, 9));
      notice.detected_at = t;
      notice.operators = {"op" + std::to_string(rng.UniformInt(0, 4))};
    }
    events.push_back(std::move(event));
  }
  return events;
}

/// Journals every delivered event, with full context content, into
/// per-lane streams — the "per-app event stream" half of the
/// byte-equivalence check (the §7 transaction journal is the other).
class RecordingOrchestrator : public orca::Orchestrator {
 public:
  explicit RecordingOrchestrator(
      std::map<std::string, std::vector<std::string>>* streams)
      : streams_(streams) {}

  void HandleOrcaStart(orca::OrcaContext& orca,
                       const orca::OrcaStartContext&) override {
    orca.RegisterEventScope(orca::PeFailureScope("watch"));
    orca.RegisterEventScope(orca::UserEventScope("user"));
  }

  void HandlePeFailureEvent(orca::OrcaContext&,
                            const orca::PeFailureContext& context,
                            const std::vector<std::string>& scopes) override {
    (*streams_)[context.application].push_back(StrFormat(
        "fail(job%lld, pe%lld, host%lld, %s, %.9f, epoch%lld, %s, %s)",
        static_cast<long long>(context.job.value()),
        static_cast<long long>(context.pe.value()),
        static_cast<long long>(context.host.value()), context.reason.c_str(),
        context.detected_at, static_cast<long long>(context.epoch),
        context.operators.empty() ? "-" : context.operators[0].c_str(),
        scopes.empty() ? "-" : scopes[0].c_str()));
  }

  void HandleUserEvent(orca::OrcaContext&,
                       const orca::UserEventContext& context,
                       const std::vector<std::string>&) override {
    std::string entry = "user(" + context.name;
    for (const auto& [key, value] : context.attributes) {
      entry += ", " + key + "=" + value;
    }
    entry += ")";
    (*streams_)["<user>"].push_back(std::move(entry));
  }

 private:
  std::map<std::string, std::vector<std::string>>* streams_;
};

/// Transport-side statistics snapshotted by Verify(), while the
/// environment is still alive.
struct RemoteStats {
  uint64_t sessions_established = 0;
  uint64_t client_drops = 0;
  uint64_t server_drops = 0;
  uint64_t duplicates_dropped = 0;
  uint64_t events_discarded = 0;
  size_t unacked_at_end = 0;
};

class SyntheticPlaneScenario : public harness::Scenario {
 public:
  SyntheticPlaneScenario(std::vector<SyntheticEvent> workload,
                         std::map<std::string, std::vector<std::string>>* streams,
                         RemoteStats* stats)
      : workload_(std::move(workload)), streams_(streams), stats_(stats) {}

  std::string name() const override { return "synthetic_plane"; }

  std::unique_ptr<orca::Orchestrator> Setup(harness::ScenarioEnv&) override {
    return std::make_unique<RecordingOrchestrator>(streams_);
  }

  void ScheduleEvents(harness::ScenarioEnv& env, common::Rng*) override {
    for (const SyntheticEvent& event : workload_) {
      env.sim().ScheduleAt(event.at, [env_ptr = &env, event] {
        if (env_ptr->bridge() != nullptr) {
          // Remote plane: events enter through the runtime-side sink and
          // cross the (possibly fault-injected) transport.
          if (event.user) {
            env_ptr->bridge()->sink().InjectUserEvent(event.user_name,
                                                      event.attributes);
          } else {
            env_ptr->bridge()->sink().OnPeFailure(event.notice);
          }
        } else {
          // Oracle: the same entry semantics, direct function calls
          // (IngestPeFailure is the public twin of the SAM sink push).
          if (event.user) {
            env_ptr->service().InjectUserEvent(event.user_name,
                                               event.attributes);
          } else {
            env_ptr->service().IngestPeFailure(event.notice);
          }
        }
      });
    }
  }

  common::Status Verify(const harness::ScenarioEnv& env) const override {
    if (stats_ != nullptr && env.bridge() != nullptr) {
      stats_->sessions_established = env.bridge()->sink().sessions_established();
      stats_->client_drops = env.bridge()->sink().connections_dropped();
      stats_->server_drops = env.bridge()->server().connections_dropped();
      stats_->duplicates_dropped = env.bridge()->server().duplicates_dropped();
      stats_->events_discarded = env.bridge()->sink().events_discarded();
      stats_->unacked_at_end = env.bridge()->sink().unacked();
    }
    return common::Status::OK();
  }

 private:
  std::vector<SyntheticEvent> workload_;
  std::map<std::string, std::vector<std::string>>* streams_;
  RemoteStats* stats_;
};

harness::ScenarioOptions BaseOptions() {
  harness::ScenarioOptions options;
  options.mode = harness::DispatchMode::kSerial;
  options.duration = 80.0;
  options.hosts = 3;
  options.inject_failures = false;
  return options;
}

/// The fault schedule each seeded run wraps around the client end of
/// every (re)connection. Probabilities are per ≤24-byte chunk, so a
/// 100-byte event frame faces several independent fault rolls and
/// disconnects regularly land mid-frame (the torn-delivery cases).
RemoteBridge::PairFactory FaultyPairFactory(uint64_t seed) {
  auto rng = std::make_shared<common::Rng>(seed);
  return [rng]() {
    auto [client_end, server_end] = LoopbackChannel::CreatePair();
    FaultPlan plan;
    plan.seed = rng->engine()();  // fresh deterministic stream per connection
    plan.max_chunk = 24;
    plan.drop_chunk = 0.02;
    plan.duplicate_chunk = 0.02;
    plan.reorder_chunk = 0.02;
    plan.corrupt_bit = 0.02;
    plan.partial_write = 0.05;
    plan.disconnect = 0.01;
    return std::pair<std::unique_ptr<Channel>, std::unique_ptr<Channel>>(
        std::make_unique<FaultyChannel>(std::move(client_end), plan),
        std::move(server_end));
  };
}

struct RunOutput {
  harness::RunResult result;
  std::map<std::string, std::vector<std::string>> streams;
  RemoteStats stats;
};

RunOutput RunOracle(const std::vector<SyntheticEvent>& workload) {
  RunOutput output;
  SyntheticPlaneScenario scenario(workload, &output.streams, &output.stats);
  output.result = harness::RunScenario(scenario, BaseOptions());
  return output;
}

RunOutput RunRemote(const std::vector<SyntheticEvent>& workload,
                    RemoteBridge::PairFactory make_pair) {
  RunOutput output;
  SyntheticPlaneScenario scenario(workload, &output.streams, &output.stats);
  harness::ScenarioOptions options = BaseOptions();
  options.remote_event_plane = true;
  options.remote_make_pair = std::move(make_pair);
  output.result = harness::RunScenario(scenario, options);
  return output;
}

TEST(TransportFaultTest, CleanLoopbackIsByteIdenticalToOracle) {
  std::vector<SyntheticEvent> workload = MakeWorkload();
  RunOutput oracle = RunOracle(workload);
  ASSERT_TRUE(oracle.result.verify.ok());
  ASSERT_GT(oracle.result.events_delivered, 100u);

  RunOutput remote = RunRemote(workload, /*make_pair=*/nullptr);
  ASSERT_TRUE(remote.result.verify.ok());
  EXPECT_EQ(remote.stats.sessions_established, 1u);
  EXPECT_EQ(remote.stats.client_drops, 0u);
  EXPECT_EQ(remote.stats.unacked_at_end, 0u);
  EXPECT_EQ(remote.result.events_delivered, oracle.result.events_delivered);
  EXPECT_EQ(FlattenJournal(remote.result.journal),
            FlattenJournal(oracle.result.journal));
  EXPECT_EQ(remote.streams, oracle.streams);
}

// The tentpole equivalence property: across ≥10 fault seeds — dropped,
// duplicated, reordered, bit-flipped, torn writes, and hard mid-delivery
// disconnects — the per-application event streams and the §7 transaction
// journal come out byte-identical to the in-process oracle, every
// disconnect is recovered, and nothing is delivered twice (the server's
// sequence dedup eats redelivered duplicates).
TEST(TransportFaultTest, FaultySeedsAreByteIdenticalToOracle) {
  std::vector<SyntheticEvent> workload = MakeWorkload();
  RunOutput oracle = RunOracle(workload);
  ASSERT_TRUE(oracle.result.verify.ok());

  uint64_t total_drops = 0;
  uint64_t reconnected_seeds = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    RunOutput remote = RunRemote(workload, FaultyPairFactory(seed));
    ASSERT_TRUE(remote.result.verify.ok());

    // Every journaled event survived the faults exactly once, in order.
    EXPECT_EQ(remote.stats.unacked_at_end, 0u);
    EXPECT_EQ(remote.stats.events_discarded, 0u);
    EXPECT_EQ(remote.result.events_delivered, oracle.result.events_delivered);
    EXPECT_EQ(FlattenJournal(remote.result.journal),
              FlattenJournal(oracle.result.journal));
    EXPECT_EQ(remote.streams, oracle.streams);

    total_drops += remote.stats.client_drops + remote.stats.server_drops;
    if (remote.stats.sessions_established >= 2) ++reconnected_seeds;
  }

  // The faults must actually have bitten for the equivalence above to
  // mean anything: connections were torn down and re-established across
  // most seeds. (duplicates_dropped stays 0 here by design: WELCOME-based
  // resume is exact, so a well-behaved client never resends an applied
  // sequence — the dedup path is exercised by the protocol-level test
  // below instead.)
  EXPECT_GE(total_drops, 10u);
  EXPECT_GE(reconnected_seeds, 8u);
}

/// Drives the server over a raw channel, speaking the wire protocol by
/// hand. Lets the test play a misbehaving client — something the real
/// RemoteEventSink never is.
class RawProtocolClient {
 public:
  RawProtocolClient(EventBusServer* server, Channel* channel)
      : server_(server), channel_(channel) {}

  void SendFrame(FrameType type, const std::vector<uint8_t>& payload) {
    std::vector<uint8_t> bytes;
    EncodeFrame(type, payload, &bytes);
    size_t off = 0;
    while (off < bytes.size()) {
      common::Result<size_t> sent =
          channel_->Send(bytes.data() + off, bytes.size() - off);
      ASSERT_TRUE(sent.ok());
      ASSERT_GT(*sent, 0u);
      off += *sent;
    }
    now_ += 0.01;
    server_->Pump(now_);
  }

  /// Drains everything the server sent back and returns it decoded.
  std::vector<DecodedFrame> DrainReceived() {
    std::vector<DecodedFrame> frames;
    uint8_t buf[512];
    for (;;) {
      common::Result<size_t> got = channel_->Receive(buf, sizeof(buf));
      if (!got.ok() || *got == 0) break;
      EXPECT_TRUE(decoder_.Feed(buf, *got, &frames).ok());
    }
    return frames;
  }

 private:
  EventBusServer* server_;
  Channel* channel_;
  FrameDecoder decoder_;
  double now_ = 0;
};

// The dedup half of exactly-once: a client that redelivers blindly —
// say one that crashed after sending but before recording the ack
// horizon, then replays its whole journal — must not get anything
// applied twice. The server drops every sequence at or below its applied
// horizon and re-acks, and a sequence *gap* (which redelivery can never
// legitimately produce) kills the connection instead of being applied
// out of order.
TEST(TransportFaultTest, ServerDropsBlindlyRedeliveredSequences) {
  EventBusServer server({}, nullptr);
  auto [client_end, server_end] = LoopbackChannel::CreatePair();
  server.Accept(std::move(server_end), 0.0);
  RawProtocolClient client(&server, client_end.get());

  HelloMsg hello;
  hello.client_id = 7;
  hello.first_seq = 1;
  client.SendFrame(FrameType::kHello, EncodeHello(hello));
  {
    std::vector<DecodedFrame> frames = client.DrainReceived();
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, FrameType::kWelcome);
    WelcomeMsg welcome;
    ASSERT_TRUE(DecodeWelcome(frames[0].payload, &welcome).ok());
    EXPECT_EQ(welcome.last_applied, 0u);
  }

  UserEventMsg user;
  user.name = "probe";
  client.SendFrame(FrameType::kEvent, EncodeUserEvent(1, user));
  client.SendFrame(FrameType::kEvent, EncodeUserEvent(2, user));
  EXPECT_EQ(server.events_applied(), 2u);
  EXPECT_EQ(server.last_applied(), 2u);

  // Full blind replay plus one genuinely new event: the replayed pair is
  // dropped by sequence, the new one applied, and the re-ack covers all.
  client.SendFrame(FrameType::kEvent, EncodeUserEvent(1, user));
  client.SendFrame(FrameType::kEvent, EncodeUserEvent(2, user));
  client.SendFrame(FrameType::kEvent, EncodeUserEvent(3, user));
  EXPECT_EQ(server.duplicates_dropped(), 2u);
  EXPECT_EQ(server.events_applied(), 3u);
  EXPECT_EQ(server.last_applied(), 3u);
  {
    std::vector<DecodedFrame> frames = client.DrainReceived();
    ASSERT_FALSE(frames.empty());
    AckMsg ack;
    ASSERT_EQ(frames.back().type, FrameType::kAck);
    ASSERT_TRUE(DecodeAck(frames.back().payload, &ack).ok());
    EXPECT_EQ(ack.last_applied, 3u);
  }

  // A gap means journal loss on the client — not recoverable by the
  // ordering guarantee, so the server refuses rather than applying out
  // of sequence.
  ASSERT_TRUE(server.connected());
  client.SendFrame(FrameType::kEvent, EncodeUserEvent(9, user));
  EXPECT_FALSE(server.connected());
  EXPECT_EQ(server.connections_dropped(), 1u);
  EXPECT_EQ(server.last_drop_reason().substr(0, 12), "sequence gap");
  EXPECT_EQ(server.events_applied(), 3u);
}

}  // namespace
}  // namespace orcastream::net
