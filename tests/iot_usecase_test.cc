// IoT fleet elastic-scaling use case (soak scenario (a) driven
// directly): the base monitor's fleetLoad gauge follows a deterministic
// trapezoid, and the ORCA logic must submit shard applications one pull
// round at a time across the high watermark, hold them through the
// plateau, and cancel them in reverse order after the cooldown — with PE
// failures anywhere in the fleet restarted under whatever scale state is
// current.
#include <gtest/gtest.h>

#include "apps/iot_app.h"
#include "apps/iot_orca.h"
#include "harness/scenarios.h"
#include "orca/orca_service.h"
#include "runtime/failure_injector.h"
#include "tests/test_util.h"

namespace orcastream::apps {
namespace {

using orcastream::testing::ClusterHarness;

class IotUseCaseTest : public ::testing::Test {
 protected:
  static constexpr double kPullPeriod = 5.0;

  IotUseCaseTest() : cluster_(8) {
    orca::OrcaService::Config service_config;
    service_config.metric_pull_period = kPullPeriod;
    service_ = std::make_unique<orca::OrcaService>(
        &cluster_.sim(), &cluster_.sam(), &cluster_.srm(), service_config);

    SensorWorkload workload;  // trapezoid: ramp 30→40, cooldown 120→130
    IotFleetOrca::Config orca_config;
    orca_config.base_id = "iot_base";
    orca_config.shard_ids = {"iot_shard0", "iot_shard1"};
    for (const auto& [id, app_name] :
         std::map<std::string, std::string>{
             {"iot_base", "IotFleet_base"},
             {"iot_shard0", "IotFleet_shard0"},
             {"iot_shard1", "IotFleet_shard1"}}) {
      IotApp::Register(&cluster_.factory(), app_name, workload);
      auto model = IotApp::Build(app_name);
      EXPECT_TRUE(model.ok()) << model.status();
      orca::AppConfig config;
      config.id = id;
      config.application_name = app_name;
      EXPECT_TRUE(service_->RegisterApplication(config, *model).ok());
      orca_config.app_names.push_back(app_name);
    }

    auto logic = std::make_unique<IotFleetOrca>(orca_config);
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());
  }

  common::PeId MonitorPe(const std::string& id) {
    auto job = service_->RunningJob(id);
    EXPECT_TRUE(job.ok());
    auto pe =
        cluster_.sam().FindJob(job.value())->PeOfOperator(IotApp::kMonitorName);
    EXPECT_TRUE(pe.ok());
    return pe.ValueOr(common::PeId());
  }

  ClusterHarness cluster_;
  std::unique_ptr<orca::OrcaService> service_;
  IotFleetOrca* logic_;
};

TEST_F(IotUseCaseTest, BaseRunsAloneBeforeTheRamp) {
  cluster_.sim().RunUntil(25);
  EXPECT_TRUE(service_->IsRunning("iot_base"));
  EXPECT_FALSE(service_->IsRunning("iot_shard0"));
  EXPECT_FALSE(service_->IsRunning("iot_shard1"));
  EXPECT_EQ(logic_->active_shards(), 0u);
  EXPECT_TRUE(logic_->scale_events().empty());
}

TEST_F(IotUseCaseTest, RampScalesOutOneShardPerPullRound) {
  cluster_.sim().RunUntil(60);
  EXPECT_EQ(logic_->active_shards(), 2u);
  EXPECT_TRUE(service_->IsRunning("iot_shard0"));
  EXPECT_TRUE(service_->IsRunning("iot_shard1"));

  // The ramp tops out at t=40 (the first pull observing load ≥ 80);
  // one scale step per metric event means the shards come up on
  // consecutive pull rounds, in configured order.
  std::vector<IotFleetOrca::ScaleEvent> events = logic_->scale_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].action, "out");
  EXPECT_EQ(events[0].shard_id, "iot_shard0");
  EXPECT_NEAR(events[0].at, 40.0, 1e-9);
  EXPECT_GE(events[0].load, 80);
  EXPECT_EQ(events[1].action, "out");
  EXPECT_EQ(events[1].shard_id, "iot_shard1");
  EXPECT_NEAR(events[1].at - events[0].at, kPullPeriod, 1e-9);
}

TEST_F(IotUseCaseTest, CooldownScalesInReverseOrderAndGoesQuiet) {
  cluster_.sim().RunUntil(180);
  EXPECT_EQ(logic_->active_shards(), 0u);
  EXPECT_TRUE(service_->IsRunning("iot_base"));
  EXPECT_FALSE(service_->IsRunning("iot_shard0"));
  EXPECT_FALSE(service_->IsRunning("iot_shard1"));

  // The hysteresis band admits exactly one crossing in each direction:
  // two scale-outs on the ramp, two scale-ins after the cooldown (most
  // recent shard first), and silence outside.
  std::vector<IotFleetOrca::ScaleEvent> events = logic_->scale_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].action, "in");
  EXPECT_EQ(events[2].shard_id, "iot_shard1");
  EXPECT_GE(events[2].at, 125.0);
  EXPECT_LE(events[2].load, 40);
  EXPECT_EQ(events[3].action, "in");
  EXPECT_EQ(events[3].shard_id, "iot_shard0");
  EXPECT_NEAR(events[3].at - events[2].at, kPullPeriod, 1e-9);
}

TEST_F(IotUseCaseTest, ShardFailureAtThePlateauRestarts) {
  runtime::FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  cluster_.sim().RunUntil(59);
  common::PeId crashed = MonitorPe("iot_shard0");
  injector.KillPeAt(60, crashed, "plateau shard crash");
  cluster_.sim().RunUntil(70);
  EXPECT_EQ(logic_->restarts(), 1u);
  EXPECT_TRUE(cluster_.sam().FindPe(crashed)->running());
  // The crash is orthogonal to scale state: both shards stay active.
  EXPECT_EQ(logic_->active_shards(), 2u);
}

TEST_F(IotUseCaseTest, BaseFailureRestartsWithoutLosingTheGauge) {
  runtime::FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  cluster_.sim().RunUntil(59);
  common::PeId crashed = MonitorPe("iot_base");
  injector.KillPeAt(60, crashed, "base monitor crash");
  cluster_.sim().RunUntil(180);
  EXPECT_EQ(logic_->restarts(), 1u);
  EXPECT_TRUE(cluster_.sam().FindPe(crashed)->running());
  // The restarted monitor keeps driving the loop: cooldown still scales
  // the fleet back in.
  EXPECT_EQ(logic_->active_shards(), 0u);
}

TEST_F(IotUseCaseTest, FullScenarioHealthyOnTheSerialOracle) {
  auto scenario = harness::MakeIotFleetScenario();
  harness::RunResult result = orcastream::testing::RunHealthyScenario(
      *scenario, orcastream::testing::SerialScenarioOptions());
  // Every fleet member delivered on its own ordering lane.
  EXPECT_TRUE(result.journal.count("IotFleet_base"));
  EXPECT_TRUE(result.journal.count("IotFleet_shard0"));
  EXPECT_TRUE(result.journal.count("IotFleet_shard1"));
}

}  // namespace
}  // namespace orcastream::apps
