#include <gtest/gtest.h>

#include "apps/trend_app.h"
#include "apps/trend_orca.h"
#include "runtime/failure_injector.h"
#include "orca/orca_service.h"
#include "tests/test_util.h"

namespace orcastream::apps {
namespace {

using orcastream::testing::ClusterHarness;

/// End-to-end §5.2 scenario (Figure 9), with the 600 s window compressed
/// to 60 s: three replicas on exclusive hosts; killing a PE of the active
/// replica triggers failover to the oldest healthy replica, the failed PE
/// restarts, and the restarted replica produces under-filled (incorrect)
/// windows until its history refills.
class TrendUseCaseTest : public ::testing::Test {
 protected:
  static constexpr double kWindow = 60;
  static constexpr double kOutputPeriod = 5;
  static constexpr double kCrashTime = 100;

  TrendUseCaseTest() : cluster_(8) {
    StockWorkload workload;
    workload.period = 0.5;
    workload.symbols = {"IBM"};
    service_ = std::make_unique<orca::OrcaService>(
        &cluster_.sim(), &cluster_.sam(), &cluster_.srm());

    TrendOrca::Config orca_config;
    for (const auto& replica : orca_config.replica_ids) {
      std::string app_name = "TrendCalculator_" + replica;
      handles_[replica] =
          TrendApp::Register(&cluster_.factory(), app_name, workload);
      auto model = TrendApp::Build(app_name, kWindow, kOutputPeriod);
      EXPECT_TRUE(model.ok()) << model.status();
      orca::AppConfig config;
      config.id = replica;
      config.application_name = app_name;
      config.parameters["replica"] = replica;
      EXPECT_TRUE(service_->RegisterApplication(config, *model).ok());
    }
    auto logic = std::make_unique<TrendOrca>(orca_config);
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());
  }

  /// PE of the stateful (compute) partition of a replica.
  common::PeId ComputePe(const std::string& replica) {
    auto job = service_->RunningJob(replica);
    EXPECT_TRUE(job.ok());
    auto pe = cluster_.sam().FindJob(job.value())->PeOfOperator(
        TrendApp::kAggregateName);
    EXPECT_TRUE(pe.ok());
    return pe.ValueOr(common::PeId());
  }

  ClusterHarness cluster_;
  std::map<std::string, TrendApp::Handles> handles_;
  std::unique_ptr<orca::OrcaService> service_;
  TrendOrca* logic_;
};

TEST_F(TrendUseCaseTest, ReplicasStartOnDistinctExclusiveHosts) {
  cluster_.sim().RunUntil(5);
  std::set<common::HostId> hosts;
  for (const auto& replica : {"replica0", "replica1", "replica2"}) {
    ASSERT_TRUE(service_->IsRunning(replica));
    auto job = service_->RunningJob(replica);
    ASSERT_TRUE(job.ok());
    for (const auto& pe : cluster_.sam().FindJob(job.value())->pes) {
      hosts.insert(pe.host);
    }
  }
  // Exclusive pools: no host is shared across replicas. Each replica has
  // 2 PEs which may stack on one exclusive host, so ≥3 distinct hosts.
  EXPECT_GE(hosts.size(), 3u);
  // Status board: replica0 active, others backup.
  EXPECT_EQ(logic_->active_replica(), "replica0");
  EXPECT_EQ(logic_->status_board().at("replica0"), "active");
  EXPECT_EQ(logic_->status_board().at("replica1"), "backup");
}

TEST_F(TrendUseCaseTest, HealthyReplicasProduceIdenticalOutput) {
  cluster_.sim().RunUntil(kCrashTime);
  // "When both replicas are healthy, the graphed output is identical."
  const auto& out0 = (*handles_["replica0"].outputs)["replica0"];
  const auto& out1 = (*handles_["replica1"].outputs)["replica1"];
  ASSERT_GT(out0.size(), 10u);
  ASSERT_EQ(out0.size(), out1.size());
  for (size_t i = 0; i < out0.size(); ++i) {
    EXPECT_EQ(out0[i].avg, out1[i].avg);
    EXPECT_EQ(out0[i].upper, out1[i].upper);
    EXPECT_EQ(out0[i].window_count, out1[i].window_count);
  }
}

TEST_F(TrendUseCaseTest, Figure9FailoverOnActiveReplicaCrash) {
  runtime::FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  cluster_.sim().RunUntil(kCrashTime - 1);
  common::PeId crashed_pe = ComputePe("replica0");
  injector.KillPeAt(kCrashTime, crashed_pe, "killed active replica PE");

  cluster_.sim().RunUntil(kCrashTime + 10);
  // Failover happened: oldest healthy backup (replica1) is active.
  ASSERT_EQ(logic_->failovers().size(), 1u);
  const auto& failover = logic_->failovers()[0];
  EXPECT_TRUE(failover.active_failed);
  EXPECT_EQ(failover.failed_replica, "replica0");
  EXPECT_EQ(failover.new_active, "replica1");
  EXPECT_EQ(logic_->active_replica(), "replica1");
  EXPECT_EQ(logic_->status_board().at("replica0"), "backup");
  EXPECT_EQ(logic_->status_board().at("replica1"), "active");
  // The failed PE was restarted by the ORCA logic.
  EXPECT_TRUE(cluster_.sam().FindPe(crashed_pe)->running());

  // The promoted replica keeps producing full windows throughout.
  const auto& active_out = (*handles_["replica1"].outputs)["replica1"];
  ASSERT_FALSE(active_out.empty());
  EXPECT_GT(active_out.back().window_count, 100);

  // The restarted replica produces under-filled windows (incorrect
  // output) until kWindow seconds pass — Figure 9's dashed box.
  cluster_.sim().RunUntil(kCrashTime + kWindow / 2);
  const auto& failed_out = (*handles_["replica0"].outputs)["replica0"];
  ASSERT_FALSE(failed_out.empty());
  int64_t partial = failed_out.back().window_count;
  int64_t full = active_out.back().window_count;
  EXPECT_LT(partial, full) << "restarted replica must still be refilling";

  // After a full window span the replica has recovered.
  cluster_.sim().RunUntil(kCrashTime + kWindow + 30);
  EXPECT_NEAR(static_cast<double>(failed_out.back().window_count),
              static_cast<double>(active_out.back().window_count), 2.0);
}

TEST_F(TrendUseCaseTest, BackupCrashDoesNotChangeActive) {
  runtime::FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  cluster_.sim().RunUntil(kCrashTime - 1);
  injector.KillPeAt(kCrashTime, ComputePe("replica2"), "backup crash");
  cluster_.sim().RunUntil(kCrashTime + 10);
  ASSERT_EQ(logic_->failovers().size(), 1u);
  EXPECT_FALSE(logic_->failovers()[0].active_failed);
  EXPECT_EQ(logic_->active_replica(), "replica0");
  // Backup was still restarted.
  EXPECT_TRUE(cluster_.sam().FindPe(logic_->failovers()[0].failed_pe) !=
              nullptr);
}

TEST_F(TrendUseCaseTest, SecondFailoverPrefersLongestHistory) {
  runtime::FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  cluster_.sim().RunUntil(5);
  // Crash active replica0 at t=100 → replica1 active. Crash replica1 at
  // t=130: replica2 (healthy since 0) must win over replica0 (healthy
  // since ~100).
  injector.KillPeAt(100, ComputePe("replica0"), "crash0");
  injector.KillPeAt(130, ComputePe("replica1"), "crash1");
  cluster_.sim().RunUntil(150);
  ASSERT_EQ(logic_->failovers().size(), 2u);
  EXPECT_EQ(logic_->failovers()[1].new_active, "replica2");
  EXPECT_EQ(logic_->active_replica(), "replica2");
}

TEST_F(TrendUseCaseTest, BollingerBandsBracketTheAverage) {
  cluster_.sim().RunUntil(120);
  const auto& out = (*handles_["replica0"].outputs)["replica0"];
  ASSERT_GT(out.size(), 5u);
  for (const auto& point : out) {
    EXPECT_GE(point.upper, point.avg);
    EXPECT_LE(point.lower, point.avg);
    EXPECT_GE(point.avg, point.min - 1e-9);
    EXPECT_LE(point.avg, point.max + 1e-9);
  }
}

}  // namespace
}  // namespace orcastream::apps
