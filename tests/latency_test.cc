// Detection→actuation latency instrumentation (the measurement behind
// the paper's Figs 7–10 evaluation): LatencyTracker quantile math with
// hand-computed expectations, the event-category/detection-stamp
// plumbing, and the two recording points — handler completion in
// immediate mode, staged-batch apply in wall-clock mode. The staged test
// drives a ThreadPoolExecutor on a manual clock (no sleeps), so the
// apply deferral it asserts is exact simulation time.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "orca/dispatch_executor.h"
#include "orca/event_bus.h"
#include "orca/latency_tracker.h"
#include "orca/orca_service.h"
#include "tests/test_util.h"

namespace orcastream::orca {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::Tuple;

// --- LatencyTracker unit tests ----------------------------------------------

TEST(LatencyTrackerTest, NearestRankQuantilesOverStoredSamples) {
  LatencyTracker tracker;
  // Record out of order; quantiles sort internally.
  tracker.Record("m", 0, 30);
  tracker.Record("m", 0, 10);
  tracker.Record("m", 0, 40);
  tracker.Record("m", 0, 20);

  LatencyTracker::Stats stats = tracker.CategoryStats("m");
  EXPECT_EQ(stats.count, 4u);
  EXPECT_EQ(stats.dropped, 0u);
  // Nearest rank: p50 over n=4 is rank ceil(0.5*4)=2 → sorted[1]=20;
  // p99 is rank ceil(3.96)=4 → 40.
  EXPECT_DOUBLE_EQ(stats.p50, 20.0);
  EXPECT_DOUBLE_EQ(stats.p99, 40.0);
  EXPECT_DOUBLE_EQ(stats.max, 40.0);
  EXPECT_DOUBLE_EQ(stats.mean, 25.0);
}

TEST(LatencyTrackerTest, SingleSampleIsEveryQuantile) {
  LatencyTracker tracker;
  tracker.Record("m", 2.0, 5.5);
  LatencyTracker::Stats stats = tracker.CategoryStats("m");
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.p50, 3.5);
  EXPECT_DOUBLE_EQ(stats.p99, 3.5);
}

TEST(LatencyTrackerTest, CapDropsStoredSamplesButCountsAll) {
  LatencyTracker tracker(/*max_samples_per_category=*/4);
  for (int i = 1; i <= 6; ++i) {
    tracker.Record("m", 0, i);
  }
  LatencyTracker::Stats stats = tracker.CategoryStats("m");
  // count/mean/max track everything; quantiles only the first 4 stored.
  EXPECT_EQ(stats.count, 6u);
  EXPECT_EQ(stats.dropped, 2u);
  EXPECT_DOUBLE_EQ(stats.max, 6.0);
  EXPECT_DOUBLE_EQ(stats.mean, 3.5);
  EXPECT_DOUBLE_EQ(stats.p50, 2.0);
  EXPECT_DOUBLE_EQ(stats.p99, 4.0);
  EXPECT_EQ(tracker.Samples("m"), (std::vector<double>{1, 2, 3, 4}));
}

TEST(LatencyTrackerTest, NegativeSpanClampsToZero) {
  LatencyTracker tracker;
  tracker.Record("m", 5.0, 3.0);  // actuation "before" detection
  LatencyTracker::Stats stats = tracker.CategoryStats("m");
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.p50, 0.0);
  EXPECT_DOUBLE_EQ(stats.max, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
}

TEST(LatencyTrackerTest, SnapshotIsCategorySortedAndResetClears) {
  LatencyTracker tracker;
  tracker.Record("peFailure", 0, 1);
  tracker.Record("operatorMetric", 0, 2);
  tracker.Record("timer", 0, 3);
  EXPECT_EQ(tracker.total_count(), 3u);

  std::vector<LatencyTracker::Stats> snapshot = tracker.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].category, "operatorMetric");
  EXPECT_EQ(snapshot[1].category, "peFailure");
  EXPECT_EQ(snapshot[2].category, "timer");

  // Unknown categories answer zero-count stats, not a new bucket.
  LatencyTracker::Stats unknown = tracker.CategoryStats("nope");
  EXPECT_EQ(unknown.category, "nope");
  EXPECT_EQ(unknown.count, 0u);
  EXPECT_EQ(tracker.Snapshot().size(), 3u);

  tracker.Reset();
  EXPECT_EQ(tracker.total_count(), 0u);
  EXPECT_TRUE(tracker.Snapshot().empty());
}

// --- Category / detection-stamp plumbing ------------------------------------

TEST(LatencyCategoryTest, CategoryOfNamesEveryEventType) {
  EXPECT_STREQ(CategoryOf(Event::Type::kOrcaStart), "start");
  EXPECT_STREQ(CategoryOf(Event::Type::kOperatorMetric), "operatorMetric");
  EXPECT_STREQ(CategoryOf(Event::Type::kPeMetric), "peMetric");
  EXPECT_STREQ(CategoryOf(Event::Type::kPeFailure), "peFailure");
  EXPECT_STREQ(CategoryOf(Event::Type::kJobSubmission), "jobSubmission");
  EXPECT_STREQ(CategoryOf(Event::Type::kJobCancellation), "jobCancellation");
  EXPECT_STREQ(CategoryOf(Event::Type::kTimer), "timer");
  EXPECT_STREQ(CategoryOf(Event::Type::kUser), "user");
}

TEST(LatencyCategoryTest, DetectionTimeComesFromTheContextStamp) {
  Event metric;
  metric.type = Event::Type::kOperatorMetric;
  OperatorMetricContext metric_context;
  metric_context.collected_at = 42.5;
  metric.context = metric_context;
  EXPECT_DOUBLE_EQ(DetectionTimeOf(metric), 42.5);

  Event failure;
  failure.type = Event::Type::kPeFailure;
  PeFailureContext failure_context;
  failure_context.detected_at = 17.0;
  failure.context = failure_context;
  EXPECT_DOUBLE_EQ(DetectionTimeOf(failure), 17.0);

  Event timer;
  timer.type = Event::Type::kTimer;
  TimerContext timer_context;
  timer_context.at = 9.0;
  timer.context = timer_context;
  EXPECT_DOUBLE_EQ(DetectionTimeOf(timer), 9.0);
}

// --- Service-level recording -------------------------------------------------

ApplicationModel CountingApp(const std::string& name) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon").Output("raw").Param("period", 1.0);
  builder.AddOperator("snk", "CountingSink").Input("raw");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

void RegisterCountingSink(ClusterHarness& cluster) {
  cluster.factory().RegisterOrReplace("CountingSink", [] {
    return std::make_unique<ops::CallbackSink>(
        [](const Tuple&, runtime::OperatorContext* ctx) {
          ctx->CreateCustomMetric("nSeen");
          ctx->AddToCustomMetric("nSeen", 1);
        });
  });
}

/// Submits the app on start and actuates on every sink metric sample
/// (SetMetricPullPeriod with the unchanged period: an actuation with no
/// behavioral side effect, so each matched delivery records one sample).
class LatencyProbe : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca, const OrcaStartContext&) override {
    OperatorMetricScope scope("sinkSeen");
    scope.SetMetricKindFilter(runtime::MetricKind::kCustom);
    scope.AddOperatorNameFilter("snk");
    orca.RegisterEventScope(scope);
    orca.SubmitApplication("app");
  }
  void HandleOperatorMetricEvent(OrcaContext& orca,
                                 const OperatorMetricContext&,
                                 const std::vector<std::string>&) override {
    ++metric_events;
    orca.SetMetricPullPeriod(15.0);
  }

  std::atomic<int> metric_events{0};
};

AppConfig ProbeAppConfig() {
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  return config;
}

/// Immediate mode records at handler completion: with dispatch_interval
/// pacing the delivery lags the SRM collection stamp by an exact,
/// hand-computable span. Pulls fire at t=15 and t=30 (period 15); with a
/// 20 s interval owed from the start delivery at t=0, the metric events
/// deliver at t=20 and t=40 → samples of exactly 5 and 10 seconds.
TEST(LatencyServiceTest, ImmediateModeRecordsDetectionToHandlerCompletion) {
  ClusterHarness cluster(3);
  RegisterCountingSink(cluster);
  OrcaService::Config config;
  config.dispatch_interval = 20.0;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(), config);
  ASSERT_TRUE(
      service.RegisterApplication(ProbeAppConfig(), CountingApp("App")).ok());

  auto probe = std::make_unique<LatencyProbe>();
  LatencyProbe* logic = probe.get();
  ASSERT_TRUE(service.Load(std::move(probe)).ok());
  cluster.sim().RunUntil(50.0);

  EXPECT_EQ(logic->metric_events.load(), 2);

  // The start delivery actuated (submit) with zero reaction by definition.
  LatencyTracker::Stats start = service.latency().CategoryStats("start");
  EXPECT_EQ(start.count, 1u);
  EXPECT_DOUBLE_EQ(start.max, 0.0);

  LatencyTracker::Stats metric =
      service.latency().CategoryStats("operatorMetric");
  EXPECT_EQ(metric.count, 2u);
  EXPECT_EQ(service.latency().Samples("operatorMetric"),
            (std::vector<double>{5.0, 10.0}));
  EXPECT_DOUBLE_EQ(metric.p50, 5.0);
  EXPECT_DOUBLE_EQ(metric.p99, 10.0);
  EXPECT_DOUBLE_EQ(metric.max, 10.0);
  EXPECT_DOUBLE_EQ(metric.mean, 7.5);
}

/// Manual monotonic clock shared between the test thread and the worker
/// (same seam dispatch_clock_test.cc drives: no sleeps anywhere).
class FakeClock {
 public:
  double Now() const { return now_.load(std::memory_order_relaxed); }
  void Advance(double seconds) {
    now_.store(now_.load(std::memory_order_relaxed) + seconds,
               std::memory_order_relaxed);
  }
  ThreadPoolExecutor::ClockFn Fn() {
    return [this] { return Now(); };
  }

 private:
  std::atomic<double> now_{0};
};

/// Staged mode records when the batch is APPLIED on the sim thread, not
/// when the worker handler committed it — the sample must include the
/// staged-apply deferral. A worker delivers the t=15 metric sample while
/// the driver holds off applying until t=21: the recorded reaction is
/// 6 s, not 0. The second pull additionally sits out wall-clock pacing
/// (released by a manual clock advance + Kick) and still stamps in pure
/// sim time: applied at t=40 for a t=30 collection → 10 s.
TEST(LatencyServiceTest, StagedModeIncludesApplyDeferral) {
  ClusterHarness cluster(3);
  RegisterCountingSink(cluster);
  FakeClock clock;
  auto pool = std::make_shared<ThreadPoolExecutor>(1, clock.Fn());
  OrcaService::Config config;
  config.dispatch_executor = pool;
  config.dispatch_interval = 1.0;  // wall-clock pacing per app queue
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(), config);
  ASSERT_TRUE(
      service.RegisterApplication(ProbeAppConfig(), CountingApp("App")).ok());

  ASSERT_TRUE(service.Load(std::make_unique<LatencyProbe>()).ok());
  // The start delivery runs on the worker; its staged submit waits for us.
  while (service.staged_actuations_pending() == 0) std::this_thread::yield();
  cluster.sim().RunUntil(1.0);
  service.ApplyStagedActuations();
  LatencyTracker::Stats start = service.latency().CategoryStats("start");
  EXPECT_EQ(start.count, 1u);
  // Published at t=0, applied at t=1: the deferral is the sample.
  EXPECT_DOUBLE_EQ(start.max, 1.0);

  // Pull at t=15 publishes the sink sample (collected_at=15); the worker
  // delivers and stages promptly, but nothing is recorded until apply.
  cluster.sim().RunUntil(15.0);
  while (service.staged_actuations_pending() == 0) std::this_thread::yield();
  EXPECT_EQ(service.latency().CategoryStats("operatorMetric").count, 0u);
  cluster.sim().RunUntil(21.0);
  service.ApplyStagedActuations();
  EXPECT_EQ(service.latency().Samples("operatorMetric"),
            (std::vector<double>{6.0}));

  // Pull at t=30: the app queue owes 1 s of wall-clock pacing from the
  // first metric delivery, so the event parks until the manual clock
  // advances (never by real time passing).
  cluster.sim().RunUntil(30.0);
  ASSERT_GE(service.queue_depth(), 1u);
  clock.Advance(2.0);
  pool->Kick();
  while (service.staged_actuations_pending() == 0) std::this_thread::yield();
  cluster.sim().RunUntil(40.0);
  service.ApplyStagedActuations();

  EXPECT_EQ(service.latency().Samples("operatorMetric"),
            (std::vector<double>{6.0, 10.0}));
  LatencyTracker::Stats metric =
      service.latency().CategoryStats("operatorMetric");
  EXPECT_EQ(metric.count, 2u);
  EXPECT_DOUBLE_EQ(metric.p50, 6.0);
  EXPECT_DOUBLE_EQ(metric.p99, 10.0);
}

}  // namespace
}  // namespace orcastream::orca
