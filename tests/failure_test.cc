#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace orcastream::runtime {
namespace {

using common::HostId;
using common::JobId;
using common::PeId;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::Tuple;

/// Stateful counter operator: accumulates a count in operator memory so a
/// crash visibly loses state.
class StatefulCounter : public runtime::Operator {
 public:
  void ProcessTuple(size_t, const Tuple& tuple) override {
    ++count_;
    Tuple out = tuple;
    out.Set("count", count_);
    ctx()->Submit(0, out);
  }

 private:
  int64_t count_ = 0;
};

ApplicationModel CounterApp() {
  AppBuilder builder("CounterApp");
  builder.AddOperator("src", "Beacon").Output("raw").Param("period", 1.0);
  builder.AddOperator("counter", "Counter").Input("raw").Output("counted");
  builder.AddOperator("snk", "LogSink").Input("counted");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() {
    log_ = cluster_.AddSinkKind("LogSink");
    cluster_.factory().RegisterOrReplace(
        "Counter", [] { return std::make_unique<StatefulCounter>(); });
  }
  ClusterHarness cluster_;
  std::vector<Tuple>* log_;
};

TEST_F(FailureTest, CrashStopsOutputAndDropsTuples) {
  auto job = cluster_.sam().SubmitJob(CounterApp());
  ASSERT_TRUE(job.ok());
  cluster_.sim().RunUntil(5.5);
  size_t before = log_->size();
  EXPECT_GE(before, 4u);
  auto pe = cluster_.sam().FindJob(*job)->PeOfOperator("counter");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(cluster_.sam().KillPe(pe.value(), "segfault").ok());
  cluster_.sim().RunUntil(10.5);
  // Tuples sent to the crashed PE are lost; no output.
  EXPECT_EQ(log_->size(), before);
  EXPECT_EQ(cluster_.sam().FindPe(pe.value())->state(), Pe::State::kCrashed);
}

TEST_F(FailureTest, RestartLosesOperatorState) {
  auto job = cluster_.sam().SubmitJob(CounterApp());
  ASSERT_TRUE(job.ok());
  cluster_.sim().RunUntil(5.5);
  ASSERT_GE(log_->size(), 4u);
  int64_t last_count = log_->back().GetInt("count").value();
  EXPECT_GE(last_count, 4);

  auto pe = cluster_.sam().FindJob(*job)->PeOfOperator("counter");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(cluster_.sam().KillPe(pe.value(), "segfault").ok());
  ASSERT_TRUE(cluster_.sam().RestartPe(pe.value()).ok());
  size_t before = log_->size();
  cluster_.sim().RunUntil(8.5);
  ASSERT_GT(log_->size(), before);
  // The counter restarted from zero: state was lost (§5.2's motivation
  // for replica failover).
  EXPECT_LT(log_->back().GetInt("count").value(), last_count);
}

TEST_F(FailureTest, CrashNotificationReachesRegisteredOrca) {
  std::vector<PeFailureNotice> notices;
  common::OrcaId orca = cluster_.sam().RegisterOrca(
      "test-orca",
      [&notices](const PeFailureNotice& notice) { notices.push_back(notice); });
  auto job = cluster_.sam().SubmitJob(CounterApp(), {}, orca);
  ASSERT_TRUE(job.ok());
  cluster_.sim().RunUntil(2);
  auto pe = cluster_.sam().FindJob(*job)->PeOfOperator("counter");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(cluster_.sam().KillPe(pe.value(), "uncaught exception").ok());
  cluster_.sim().RunUntil(5);
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_EQ(notices[0].job, *job);
  EXPECT_EQ(notices[0].pe, pe.value());
  EXPECT_EQ(notices[0].reason, "uncaught exception");
  EXPECT_EQ(notices[0].operators, (std::vector<std::string>{"counter"}));
  EXPECT_GT(notices[0].detected_at, 2.0);
}

TEST_F(FailureTest, UnmanagedJobFailureNotRouted) {
  std::vector<PeFailureNotice> notices;
  cluster_.sam().RegisterOrca(
      "test-orca",
      [&notices](const PeFailureNotice& notice) { notices.push_back(notice); });
  // Job submitted WITHOUT an owner: no notification should be routed.
  auto job = cluster_.sam().SubmitJob(CounterApp());
  ASSERT_TRUE(job.ok());
  cluster_.sim().RunUntil(2);
  auto pe = cluster_.sam().FindJob(*job)->PeOfOperator("counter");
  ASSERT_TRUE(cluster_.sam().KillPe(pe.value(), "crash").ok());
  cluster_.sim().RunUntil(5);
  EXPECT_TRUE(notices.empty());
}

TEST_F(FailureTest, DetectionDelayIsHonoured) {
  Srm::Config srm_config;
  srm_config.failure_detection_delay = 2.5;
  ClusterHarness cluster(3, Sam::Config{}, srm_config);
  cluster.factory().RegisterOrReplace(
      "Counter", [] { return std::make_unique<StatefulCounter>(); });
  cluster.AddSinkKind("LogSink");
  std::vector<PeFailureNotice> notices;
  common::OrcaId orca = cluster.sam().RegisterOrca(
      "o", [&notices](const PeFailureNotice& n) { notices.push_back(n); });
  auto job = cluster.sam().SubmitJob(CounterApp(), {}, orca);
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(2);
  auto pe = cluster.sam().FindJob(*job)->PeOfOperator("counter");
  ASSERT_TRUE(cluster.sam().KillPe(pe.value(), "crash").ok());
  cluster.sim().RunUntil(4);
  EXPECT_TRUE(notices.empty());  // detection takes 2.5 s
  cluster.sim().RunUntil(5);
  ASSERT_EQ(notices.size(), 1u);
  EXPECT_NEAR(notices[0].detected_at, 4.5, 1e-6);
}

TEST_F(FailureTest, HostFailureCrashesAllPesAndNotifiesPerPe) {
  std::vector<PeFailureNotice> notices;
  common::OrcaId orca = cluster_.sam().RegisterOrca(
      "o", [&notices](const PeFailureNotice& n) { notices.push_back(n); });
  // Fuse everything onto one PE? No — use one host so all PEs land there.
  ClusterHarness single(1);
  single.factory().RegisterOrReplace(
      "Counter", [] { return std::make_unique<StatefulCounter>(); });
  single.AddSinkKind("LogSink");
  std::vector<PeFailureNotice> single_notices;
  common::OrcaId single_orca = single.sam().RegisterOrca(
      "o", [&single_notices](const PeFailureNotice& n) {
        single_notices.push_back(n);
      });
  (void)orca;
  auto job = single.sam().SubmitJob(CounterApp(), {}, single_orca);
  ASSERT_TRUE(job.ok());
  single.sim().RunUntil(2);
  ASSERT_TRUE(single.srm().KillHost(HostId(0)).ok());
  single.sim().RunUntil(5);
  // Three PEs on the host → three failure notices, same reason.
  ASSERT_EQ(single_notices.size(), 3u);
  for (const auto& notice : single_notices) {
    EXPECT_EQ(notice.reason, "host failure");
    EXPECT_EQ(notice.host, HostId(0));
  }
  EXPECT_FALSE(single.srm().hosts()[0].up);
  // Placement refuses a new job: the only host is down.
  EXPECT_FALSE(single.sam().SubmitJob(CounterApp()).ok());
  ASSERT_TRUE(single.srm().ReviveHost(HostId(0)).ok());
  EXPECT_TRUE(single.sam().SubmitJob(CounterApp()).ok());
}

TEST_F(FailureTest, FailureInjectorTargetsOperatorPe) {
  auto job = cluster_.sam().SubmitJob(CounterApp());
  ASSERT_TRUE(job.ok());
  FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  injector.KillPeOfOperatorAt(3.0, *job, "counter", "injected");
  cluster_.sim().RunUntil(5);
  auto pe = cluster_.sam().FindJob(*job)->PeOfOperator("counter");
  ASSERT_TRUE(pe.ok());
  EXPECT_EQ(cluster_.sam().FindPe(pe.value())->state(), Pe::State::kCrashed);
}

TEST_F(FailureTest, KillPeOnStoppedPeFails) {
  auto job = cluster_.sam().SubmitJob(CounterApp());
  ASSERT_TRUE(job.ok());
  auto pe = cluster_.sam().FindJob(*job)->PeOfOperator("counter");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(cluster_.sam().StopPe(pe.value()).ok());
  EXPECT_TRUE(
      cluster_.sam().KillPe(pe.value(), "x").IsFailedPrecondition());
  EXPECT_TRUE(cluster_.sam().KillPe(PeId(999), "x").IsNotFound());
}

// --- Failure routing across logic turnover ----------------------------------

/// Watches PE failures and restarts them; optionally submits "app" on
/// start (a reloaded logic finds its application already running).
class FailureWatcher : public orca::Orchestrator {
 public:
  explicit FailureWatcher(bool submit) : submit_(submit) {}

  void HandleOrcaStart(orca::OrcaContext& orca,
                       const orca::OrcaStartContext&) override {
    orca.RegisterEventScope(orca::PeFailureScope("watch"));
    if (submit_) orca.SubmitApplication("app");
  }
  void HandlePeFailureEvent(orca::OrcaContext& orca,
                            const orca::PeFailureContext& context,
                            const std::vector<std::string>&) override {
    ++failures;
    orca.RestartPe(context.pe);
  }

  int failures = 0;

 private:
  const bool submit_;
};

/// Parameterized over the sink wiring: every routing test runs once with
/// the service as its own failure sink and once with failures crossing
/// the src/net loopback transport — the remote plane's contract is that
/// these are indistinguishable.
class FailureRoutingTest
    : public FailureTest,
      public ::testing::WithParamInterface<orcastream::testing::SinkMode> {
 protected:
  /// Builds the service. A nonzero dispatch_interval spaces serial
  /// deliveries out, opening a window where a published failure event
  /// sits queued across a ReplaceLogic/Shutdown.
  orca::OrcaService& InitService(double dispatch_interval = 0) {
    orca::OrcaService::Config service_config;
    service_config.dispatch_interval = dispatch_interval;
    orca::OrcaService& service =
        cluster_.InitService(service_config, GetParam());
    orca::AppConfig config;
    config.id = "app";
    config.application_name = "CounterApp";
    EXPECT_TRUE(service.RegisterApplication(config, CounterApp()).ok());
    return service;
  }

  PeId CounterPe() {
    auto job = cluster_.service().RunningJob("app");
    EXPECT_TRUE(job.ok());
    auto pe = cluster_.sam().FindJob(job.value())->PeOfOperator("counter");
    EXPECT_TRUE(pe.ok());
    return pe.ValueOr(PeId(0));
  }
};

INSTANTIATE_TEST_SUITE_P(
    Sinks, FailureRoutingTest,
    ::testing::Values(orcastream::testing::SinkMode::kInProcess,
                      orcastream::testing::SinkMode::kRemote),
    [](const ::testing::TestParamInfo<orcastream::testing::SinkMode>& info) {
      return info.param == orcastream::testing::SinkMode::kInProcess
                 ? "InProcess"
                 : "Remote";
    });

// Shutdown leaves managed jobs running under the old SAM registration;
// a later Load must re-own them so their failure notifications route to
// the reloaded service instead of vanishing with the retired id.
TEST_P(FailureRoutingTest, ReloadedServiceStillSeesFailuresOfKeptJobs) {
  orca::OrcaService& service = InitService();
  ASSERT_TRUE(service.Load(std::make_unique<FailureWatcher>(true)).ok());
  cluster_.sim().RunUntil(2);
  ASSERT_TRUE(service.IsRunning("app"));

  service.Shutdown();
  cluster_.sim().RunUntil(3);
  ASSERT_TRUE(service.IsRunning("app"));  // jobs survive the shutdown

  auto reloaded_holder = std::make_unique<FailureWatcher>(false);
  FailureWatcher* reloaded = reloaded_holder.get();
  ASSERT_TRUE(service.Load(std::move(reloaded_holder)).ok());
  cluster_.sim().RunUntil(4);  // start delivered, scope registered

  PeId pe = CounterPe();
  ASSERT_TRUE(cluster_.sam().KillPe(pe, "post-reload crash").ok());
  cluster_.sim().RunUntil(6);

  EXPECT_EQ(reloaded->failures, 1);
  EXPECT_EQ(cluster_.sam().FindPe(pe)->state(), Pe::State::kRunning);
}

// A failure queued during the replacement window matched only the
// outgoing logic's subscopes; it must be scrubbed, not delivered into
// the replacement's fresh generation (which never saw the crash).
TEST_P(FailureRoutingTest, ReplaceLogicScrubsStaleQueuedFailures) {
  // 5-second delivery spacing: the failure event (detected ~0.5s after
  // the kill) is published well before the bus's next delivery slot.
  orca::OrcaService& service = InitService(/*dispatch_interval=*/5.0);
  ASSERT_TRUE(service.Load(std::make_unique<FailureWatcher>(true)).ok());
  cluster_.sim().RunUntil(2);

  PeId pe = CounterPe();
  ASSERT_TRUE(cluster_.sam().KillPe(pe, "swap-window crash").ok());
  // Detection + notification fire here; the event is queued against the
  // v1 generation's scope key, waiting for the t=5 delivery slot.
  cluster_.sim().RunUntil(3);
  ASSERT_GE(service.queue_depth(), 1u);

  auto v2_holder = std::make_unique<FailureWatcher>(false);
  FailureWatcher* v2 = v2_holder.get();
  ASSERT_TRUE(service.ReplaceLogic(std::move(v2_holder)).ok());
  cluster_.sim().RunUntil(20);

  EXPECT_EQ(v2->failures, 0);
  // Nobody reacted — by design: the stale failure predates v2's world.
  EXPECT_EQ(cluster_.sam().FindPe(pe)->state(), Pe::State::kCrashed);
}

// The same scrub applies on Shutdown: a failure queued against the
// retiring generation must not leak into a future Load.
TEST_P(FailureRoutingTest, ShutdownScrubsStaleQueuedFailures) {
  orca::OrcaService& service = InitService(/*dispatch_interval=*/5.0);
  ASSERT_TRUE(service.Load(std::make_unique<FailureWatcher>(true)).ok());
  cluster_.sim().RunUntil(2);

  PeId pe = CounterPe();
  ASSERT_TRUE(cluster_.sam().KillPe(pe, "shutdown-window crash").ok());
  cluster_.sim().RunUntil(3);  // published, queued for the t=5 slot
  ASSERT_GE(service.queue_depth(), 1u);
  service.Shutdown();

  auto next_holder = std::make_unique<FailureWatcher>(false);
  FailureWatcher* next = next_holder.get();
  ASSERT_TRUE(service.Load(std::move(next_holder)).ok());
  cluster_.sim().RunUntil(20);

  EXPECT_EQ(next->failures, 0);
  EXPECT_EQ(cluster_.sam().FindPe(pe)->state(), Pe::State::kCrashed);
}

// A fresh failure after the swap still flows: scrubbing is precise, it
// drops only events whose every matched subscope died with the old
// generation.
TEST_P(FailureRoutingTest, ReplacementSeesFreshFailures) {
  orca::OrcaService& service = InitService();
  ASSERT_TRUE(service.Load(std::make_unique<FailureWatcher>(true)).ok());
  cluster_.sim().RunUntil(2);

  auto v2_holder = std::make_unique<FailureWatcher>(false);
  FailureWatcher* v2 = v2_holder.get();
  ASSERT_TRUE(service.ReplaceLogic(std::move(v2_holder)).ok());
  cluster_.sim().RunUntil(3);  // replacement start delivered

  PeId pe = CounterPe();
  ASSERT_TRUE(cluster_.sam().KillPe(pe, "post-swap crash").ok());
  cluster_.sim().RunUntil(5);

  EXPECT_EQ(v2->failures, 1);
  EXPECT_EQ(cluster_.sam().FindPe(pe)->state(), Pe::State::kRunning);
}

}  // namespace
}  // namespace orcastream::runtime
