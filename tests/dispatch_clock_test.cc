// ThreadPoolExecutor's injectable clock seam (the single wall-clock
// funnel): pacing arithmetic runs on whatever ClockFn the constructor is
// handed, so these tests drive dispatch-interval pacing with a manual
// clock and never sleep — an hour of owed pacing elapses in microseconds
// of real time. Kick() is the test-side wakeup after a manual advance.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "orca/dispatch_executor.h"
#include "orca/event_bus.h"
#include "orca/orchestrator.h"
#include "sim/simulation.h"

namespace orcastream::orca {
namespace {

/// Manual monotonic clock shared between the test thread and workers.
class FakeClock {
 public:
  explicit FakeClock(double start = 0) : now_(start) {}
  double Now() const { return now_.load(std::memory_order_relaxed); }
  void Advance(double seconds) {
    now_.store(now_.load(std::memory_order_relaxed) + seconds,
               std::memory_order_relaxed);
  }
  ThreadPoolExecutor::ClockFn Fn() {
    return [this] { return Now(); };
  }

 private:
  std::atomic<double> now_;
};

TEST(DispatchClockTest, NowSecondsFollowsInjectedClock) {
  FakeClock clock(/*start=*/100.0);  // nonzero epoch must cancel out
  ThreadPoolExecutor pool(1, clock.Fn());
  EXPECT_DOUBLE_EQ(pool.NowSeconds(), 0.0);
  clock.Advance(5.25);
  EXPECT_DOUBLE_EQ(pool.NowSeconds(), 5.25);
  pool.Stop();
}

TEST(DispatchClockTest, PacingRetryServedByClockAdvanceNotRealTime) {
  FakeClock clock;
  ThreadPoolExecutor pool(2, clock.Fn());

  common::Mutex mu;
  int calls = 0;
  pool.Attach([&](const std::string&) {
    QueueStepResult result;
    common::MutexLock lock(mu);
    ++calls;
    if (calls == 1) {
      // Owe an HOUR of pacing. With a real clock this queue would sit in
      // the deadline heap for 3600 s; the injected clock pays it off
      // below in real microseconds.
      result.kind = QueueStepResult::Kind::kWaiting;
      result.retry_delay = 3600.0;
    } else {
      result.kind = QueueStepResult::Kind::kDelivered;
      result.more = false;
    }
    return result;
  });

  pool.Submit("q");
  // The retry deadline is computed when the worker re-acquires the pool
  // lock after the kWaiting step, so a single pre-timed advance could
  // land before the deadline exists; advancing one owed hour per lap is
  // robust against every interleaving and never sleeps.
  while (true) {
    {
      common::MutexLock lock(mu);
      if (calls >= 2) break;
    }
    clock.Advance(3600.1);
    pool.Kick();
  }
  pool.Drain();  // the served retry left the pool quiescent
  {
    common::MutexLock lock(mu);
    EXPECT_EQ(calls, 2);
  }
  pool.Stop();
}

/// End-to-end through the EventBus: per-queue dispatch_interval pacing on
/// the executor clock, with the test thread advancing the fake clock one
/// interval at a time until the backlog drains. Real sleeps never happen;
/// the delivery timestamps prove pacing was enforced in fake time.
class StampingLogic : public Orchestrator {
 public:
  explicit StampingLogic(DispatchExecutor* executor) : executor_(executor) {}
  void HandleOrcaStart(OrcaContext&, const OrcaStartContext&) override {}
  void HandlePeMetricEvent(OrcaContext&, const PeMetricContext&,
                           const std::vector<std::string>&) override {
    common::MutexLock lock(mu);
    delivered_at.push_back(executor_->NowSeconds());
  }

  std::vector<double> Stamps() {
    common::MutexLock lock(mu);
    return delivered_at;
  }

 private:
  common::Mutex mu;
  std::vector<double> delivered_at;
  DispatchExecutor* executor_;
};

TEST(DispatchClockTest, BusDispatchIntervalPacesOnInjectedClock) {
  constexpr double kInterval = 10.0;
  constexpr int kEvents = 5;
  FakeClock clock;
  auto pool = std::make_shared<ThreadPoolExecutor>(2, clock.Fn());
  sim::Simulation sim;
  EventBus::Config config;
  config.dispatch_interval = kInterval;
  config.executor = pool;
  EventBus bus(&sim, config);
  StampingLogic logic(pool.get());
  bus.set_logic(&logic);

  for (int i = 0; i < kEvents; ++i) {
    Event event;
    event.type = Event::Type::kPeMetric;
    event.summary = "tick" + std::to_string(i);
    event.matched = {"scope"};
    PeMetricContext context;
    context.application = "app";
    context.value = i;
    event.context = std::move(context);
    bus.Publish(std::move(event));
  }

  // Pay off each owed interval in fake time. The loop spins (no sleeps
  // anywhere); every lap hands the workers another interval and wakes
  // them to promote the due retry.
  while (bus.events_delivered() < static_cast<uint64_t>(kEvents)) {
    clock.Advance(kInterval);
    pool->Kick();
  }
  pool->Drain();

  std::vector<double> stamps = logic.Stamps();
  ASSERT_EQ(stamps.size(), static_cast<size_t>(kEvents));
  for (size_t i = 1; i < stamps.size(); ++i) {
    // Successive deliveries of one queue are spaced by >= the interval
    // on the executor clock (small epsilon for double arithmetic).
    EXPECT_GE(stamps[i] - stamps[i - 1], kInterval - 1e-9)
        << "deliveries " << i - 1 << " -> " << i << " under-paced";
  }
  EXPECT_EQ(bus.queue_depth(), 0u);
  pool->Stop();
}

}  // namespace
}  // namespace orcastream::orca
