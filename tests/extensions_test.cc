#include <gtest/gtest.h>

#include "orca/descriptor.h"
#include "orca/orca_service.h"
#include "orca/rules.h"
#include "orca/transaction_log.h"
#include "tests/test_util.h"
#include "topology/adl.h"
#include "topology/app_builder.h"

namespace orcastream::orca {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;

ApplicationModel TinyApp(const std::string& name) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon").Output("s").Param("period", 1.0);
  builder.AddOperator("snk", "NullSink").Input("s");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

// --- TransactionLog unit tests ------------------------------------------------

TEST(TransactionLogTest, BeginCommitLifecycle) {
  TransactionLog log;
  TransactionId a = log.Begin("event A", "appA", 1.0);
  TransactionId b = log.Begin("event B", "appB", 2.0);
  EXPECT_NE(a, b);
  log.RecordActuation(a, "restartPe(3)");
  log.RecordActuation(a, "cancelJob(7)");
  log.Commit(a, 1.5);

  const auto* record = log.Find(a);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, TransactionLog::State::kCommitted);
  EXPECT_EQ(record->actuations,
            (std::vector<std::string>{"restartPe(3)", "cancelJob(7)"}));
  EXPECT_EQ(record->begun_at, 1.0);
  EXPECT_EQ(record->finished_at, 1.5);

  auto uncommitted = log.Uncommitted();
  ASSERT_EQ(uncommitted.size(), 1u);
  EXPECT_EQ(uncommitted[0]->id, b);
  EXPECT_EQ(log.committed_count(), 1);
  EXPECT_EQ(log.size(), 2u);
}

TEST(TransactionLogTest, AbortAndUnknownIdsAreSafe) {
  TransactionLog log;
  TransactionId a = log.Begin("event", "app", 0);
  log.Abort(a, 1.0);
  EXPECT_EQ(log.Find(a)->state, TransactionLog::State::kAborted);
  // Unknown ids are no-ops.
  log.RecordActuation(999, "x");
  log.Commit(999, 1.0);
  EXPECT_EQ(log.Find(999), nullptr);
  EXPECT_EQ(log.committed_count(), 0);
}

// --- Service-level transactions (§7 reliable delivery) ------------------------

class ActingOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    orca.RegisterEventScope(UserEventScope("user"));
    starts++;
  }
  void HandleUserEvent(OrcaContext& orca, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    events.push_back(context.name);
    if (context.name == "actuate") {
      orca.SubmitApplication("app");
    }
  }
  int starts = 0;
  std::vector<std::string> events;
};

class TransactionServiceTest : public ::testing::Test {
 protected:
  TransactionServiceTest() : cluster_(3) {
    service_ = std::make_unique<OrcaService>(&cluster_.sim(), &cluster_.sam(),
                                             &cluster_.srm());
    AppConfig config;
    config.id = "app";
    config.application_name = "App";
    EXPECT_TRUE(service_->RegisterApplication(config, TinyApp("App")).ok());
    auto logic = std::make_unique<ActingOrca>();
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());
  }
  ClusterHarness cluster_;
  std::unique_ptr<OrcaService> service_;
  ActingOrca* logic_;
};

TEST_F(TransactionServiceTest, EveryDeliveryGetsACommittedTransaction) {
  cluster_.sim().RunUntil(1);
  service_->InjectUserEvent("one");
  service_->InjectUserEvent("two");
  cluster_.sim().RunUntil(2);
  // start + two user events.
  EXPECT_EQ(service_->transactions().committed_count(), 3);
  EXPECT_TRUE(service_->transactions().Uncommitted().empty());
  EXPECT_EQ(service_->current_transaction(), 0);
  auto records = service_->transactions().records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0]->event_summary, "orcaStart");
  EXPECT_EQ(records[1]->event_summary, "userEvent(one)");
}

TEST_F(TransactionServiceTest, ActuationsAreJournaledAgainstTheirEvent) {
  cluster_.sim().RunUntil(1);
  service_->InjectUserEvent("actuate");
  cluster_.sim().RunUntil(2);
  const auto records = service_->transactions().records();
  const TransactionLog::Record* actuate = nullptr;
  for (const auto* record : records) {
    if (record->event_summary == "userEvent(actuate)") actuate = record;
  }
  ASSERT_NE(actuate, nullptr);
  ASSERT_EQ(actuate->actuations.size(), 1u);
  EXPECT_EQ(actuate->actuations[0], "submitApplication(app)");
}

TEST_F(TransactionServiceTest, ReplaceLogicRedeliversQueuedEvents) {
  cluster_.sim().RunUntil(1);
  // Queue events without running the simulator: they stay undelivered.
  service_->InjectUserEvent("pending1");
  service_->InjectUserEvent("pending2");
  ASSERT_GE(service_->queue_depth(), 2u);

  auto replacement_holder = std::make_unique<ActingOrca>();
  ActingOrca* replacement = replacement_holder.get();
  ASSERT_TRUE(service_->ReplaceLogic(std::move(replacement_holder)).ok());
  cluster_.sim().RunUntil(2);

  // The replacement got a fresh start event first, then the queued
  // (uncommitted) events — reliable delivery across the logic swap.
  EXPECT_EQ(replacement->starts, 1);
  EXPECT_EQ(replacement->events,
            (std::vector<std::string>{"pending1", "pending2"}));
}

TEST_F(TransactionServiceTest, ReplaceWithoutLoadIsError) {
  OrcaService fresh(&cluster_.sim(), &cluster_.sam(), &cluster_.srm());
  EXPECT_TRUE(fresh.ReplaceLogic(std::make_unique<ActingOrca>())
                  .IsFailedPrecondition());
}

// --- RuleOrchestrator (§7 rules with default actions) --------------------------

class RulesTest : public ::testing::Test {
 protected:
  RulesTest() : cluster_(3) {
    service_ = std::make_unique<OrcaService>(&cluster_.sim(), &cluster_.sam(),
                                             &cluster_.srm());
    AppConfig config;
    config.id = "app";
    config.application_name = "App";
    EXPECT_TRUE(service_->RegisterApplication(config, TinyApp("App")).ok());
  }
  ClusterHarness cluster_;
  std::unique_ptr<OrcaService> service_;
};

TEST_F(RulesTest, MetricRuleFiresOnCondition) {
  auto logic = std::make_unique<RuleOrchestrator>();
  RuleOrchestrator* rules = logic.get();
  int64_t seen = 0;
  logic->OnStart([](OrcaContext& orca) { orca.SubmitApplication("app"); });
  OperatorMetricScope scope("ignored-key");
  scope.AddOperatorNameFilter("src");
  scope.AddOperatorMetric(BuiltinMetric::kNumTuplesSubmitted);
  logic->WhenMetric(
      scope,
      [](const OperatorMetricContext& context) { return context.value > 5; },
      [&seen](OrcaContext&, const OperatorMetricContext& context) {
        seen = context.value;
      });
  ASSERT_TRUE(service_->Load(std::move(logic)).ok());
  cluster_.sim().RunUntil(31);  // two pull rounds at 15/30
  EXPECT_GT(seen, 5);
  int64_t fires = 0;
  for (const auto& [key, count] : rules->fire_counts()) fires += count;
  // Condition (>5) true on both rounds (values ~14 and ~29).
  EXPECT_EQ(fires, 2);
}

TEST_F(RulesTest, DefaultPeRestartKicksInWithoutSpecialization) {
  auto logic = std::make_unique<RuleOrchestrator>();
  RuleOrchestrator* rules = logic.get();
  logic->OnStart([](OrcaContext& orca) { orca.SubmitApplication("app"); });
  logic->WithDefaultPeRestart();
  ASSERT_TRUE(service_->Load(std::move(logic)).ok());
  cluster_.sim().RunUntil(2);
  auto job = service_->RunningJob("app");
  ASSERT_TRUE(job.ok());
  auto pe = cluster_.sam().FindJob(job.value())->PeOfOperator("src");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(cluster_.sam().KillPe(pe.value(), "crash").ok());
  cluster_.sim().RunUntil(5);
  // The default action restarted the PE.
  EXPECT_TRUE(cluster_.sam().FindPe(pe.value())->running());
  EXPECT_EQ(rules->fire_counts().at("defaultPeRestart"), 1);
}

TEST_F(RulesTest, ExplicitFailureRuleSuppressesDefault) {
  auto logic = std::make_unique<RuleOrchestrator>();
  RuleOrchestrator* rules = logic.get();
  int custom_fired = 0;
  logic->OnStart([](OrcaContext& orca) { orca.SubmitApplication("app"); });
  PeFailureScope scope("ignored");
  scope.AddApplicationFilter("App");
  logic->WhenFailure(scope, nullptr,
                     [&custom_fired](OrcaContext&, const PeFailureContext&) {
                       ++custom_fired;  // deliberately does NOT restart
                     });
  logic->WithDefaultPeRestart();
  ASSERT_TRUE(service_->Load(std::move(logic)).ok());
  cluster_.sim().RunUntil(2);
  auto job = service_->RunningJob("app");
  auto pe = cluster_.sam().FindJob(job.value())->PeOfOperator("src");
  ASSERT_TRUE(cluster_.sam().KillPe(pe.value(), "crash").ok());
  cluster_.sim().RunUntil(5);
  EXPECT_EQ(custom_fired, 1);
  // The specialization consumed the event: no default restart.
  EXPECT_FALSE(cluster_.sam().FindPe(pe.value())->running());
  EXPECT_EQ(rules->fire_counts().count("defaultPeRestart"), 0u);
}

TEST_F(RulesTest, TimerUserAndJobRules) {
  auto logic = std::make_unique<RuleOrchestrator>();
  int timer_fired = 0, user_fired = 0, job_fired = 0;
  logic->OnStart([](OrcaContext& orca) {
    orca.CreateTimer(5.0, "check");
    orca.SubmitApplication("app");
  });
  logic->WhenTimer("check", [&timer_fired](OrcaContext&,
                                           const TimerContext&) {
    ++timer_fired;
  });
  UserEventScope user_scope("ignored");
  user_scope.AddNameFilter("poke");
  logic->WhenUserEvent(user_scope,
                       [&user_fired](OrcaContext&, const UserEventContext&) {
                         ++user_fired;
                       });
  logic->WhenJobSubmitted(JobEventScope("ignored"),
                          [&job_fired](OrcaContext&, const JobEventContext&) {
                            ++job_fired;
                          });
  ASSERT_TRUE(service_->Load(std::move(logic)).ok());
  cluster_.sim().RunUntil(2);
  service_->InjectUserEvent("poke");
  service_->InjectUserEvent("unmatched");
  cluster_.sim().RunUntil(10);
  EXPECT_EQ(timer_fired, 1);
  EXPECT_EQ(user_fired, 1);
  EXPECT_EQ(job_fired, 1);
}

// --- Descriptor + dynamic ADL registration -------------------------------------

TEST(DescriptorTest, RoundTrip) {
  OrcaDescriptor descriptor;
  descriptor.name = "MyORCA";
  descriptor.logic_library = "MyORCA.so";
  OrcaDescriptor::ManagedApp app;
  app.config_id = "fb";
  app.application_name = "fbApp";
  app.adl_ref = "fbApp.adl";
  app.garbage_collectable = true;
  app.gc_timeout_seconds = 30;
  app.parameters["rate"] = "10";
  descriptor.applications.push_back(app);

  std::string xml = WriteOrcaDescriptor(descriptor);
  auto parsed = ParseOrcaDescriptor(xml);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name, "MyORCA");
  EXPECT_EQ(parsed->logic_library, "MyORCA.so");
  ASSERT_EQ(parsed->applications.size(), 1u);
  EXPECT_EQ(parsed->applications[0].config_id, "fb");
  EXPECT_EQ(parsed->applications[0].adl_ref, "fbApp.adl");
  EXPECT_TRUE(parsed->applications[0].garbage_collectable);
  EXPECT_EQ(parsed->applications[0].gc_timeout_seconds, 30);
  EXPECT_EQ(parsed->applications[0].parameters.at("rate"), "10");
}

TEST(DescriptorTest, RejectsBadDocuments) {
  EXPECT_TRUE(ParseOrcaDescriptor("<wrong/>").status().IsParseError());
  EXPECT_TRUE(
      ParseOrcaDescriptor("<orchestrator/>").status().IsNotFound());
}

TEST(DescriptorTest, ApplyDescriptorRegistersApplications) {
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());

  OrcaDescriptor descriptor;
  descriptor.name = "MyORCA";
  OrcaDescriptor::ManagedApp app;
  app.config_id = "tiny";
  app.application_name = "TinyApp";
  app.adl_ref = "tiny.adl";
  descriptor.applications.push_back(app);

  std::string adl = topology::WriteAdl(TinyApp("TinyApp"));
  AdlLoader loader = [&adl](const std::string& ref)
      -> common::Result<ApplicationModel> {
    if (ref == "tiny.adl") return topology::ParseAdl(adl);
    return common::Status::NotFound("no such ADL: " + ref);
  };
  ASSERT_TRUE(ApplyDescriptor(descriptor, loader, &service).ok());
  ASSERT_TRUE(service.SubmitApplication("tiny").ok());
  cluster.sim().RunUntil(1);
  EXPECT_TRUE(service.IsRunning("tiny"));
}

TEST(DynamicRegistrationTest, AddApplicationAfterDeployment) {
  // §7: dynamically add an application developed after orchestrator
  // deployment — register via ADL while the service runs.
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  auto logic = std::make_unique<RuleOrchestrator>();
  ASSERT_TRUE(service.Load(std::move(logic)).ok());
  cluster.sim().RunUntil(100);  // deployed and idle for a while

  AppConfig config;
  config.id = "late";
  config.application_name = "LateApp";
  std::string adl = topology::WriteAdl(TinyApp("LateApp"));
  ASSERT_TRUE(service.RegisterApplicationAdl(config, adl).ok());
  ASSERT_TRUE(service.SubmitApplication("late").ok());
  cluster.sim().RunUntil(101);
  EXPECT_TRUE(service.IsRunning("late"));
  // Malformed ADL is rejected cleanly.
  AppConfig bad;
  bad.id = "bad";
  bad.application_name = "Bad";
  EXPECT_TRUE(
      service.RegisterApplicationAdl(bad, "<notAdl/>").IsParseError());
}

}  // namespace
}  // namespace orcastream::orca
