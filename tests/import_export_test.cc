#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace orcastream::runtime {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::Tuple;

ApplicationModel ExporterApp(const std::string& name,
                             const std::string& export_id,
                             const std::map<std::string, std::string>& props,
                             double period = 1.0) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon")
      .Output("results")
      .Param("period", period)
      .Export(export_id, props);
  builder.AddOperator("local", "NullSink").Input("results");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

ApplicationModel ImporterByPropsApp(
    const std::string& name, const std::string& sink_kind,
    const std::map<std::string, std::string>& props) {
  AppBuilder builder(name);
  builder.AddOperator("in", sink_kind).ImportByProperties(props);
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

TEST(ImportExportTest, PropertyMatchedConnection) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ExporterApp("Exp", "", {{"topic", "scores"}}))
                  .ok());
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ImporterByPropsApp("Imp", "LogSink",
                                                {{"topic", "scores"}}))
                  .ok());
  cluster.sim().RunUntil(5.5);
  EXPECT_GE(log->size(), 4u);
}

TEST(ImportExportTest, PropertySubsetSemantics) {
  // The importer's properties must all be present on the export; extra
  // export properties are fine.
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ExporterApp(
                      "Exp", "", {{"topic", "scores"}, {"extra", "yes"}}))
                  .ok());
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ImporterByPropsApp("Imp", "LogSink",
                                                {{"topic", "scores"}}))
                  .ok());
  cluster.sim().RunUntil(3.5);
  EXPECT_GE(log->size(), 2u);
}

TEST(ImportExportTest, MismatchedPropertiesDoNotConnect) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ExporterApp("Exp", "", {{"topic", "scores"}}))
                  .ok());
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ImporterByPropsApp("Imp", "LogSink",
                                                {{"topic", "other"}}))
                  .ok());
  cluster.sim().RunUntil(5);
  EXPECT_EQ(log->size(), 0u);
}

TEST(ImportExportTest, IdMatchedConnection) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  ASSERT_TRUE(
      cluster.sam().SubmitJob(ExporterApp("Exp", "resultsFeed", {})).ok());
  AppBuilder builder("Imp");
  builder.AddOperator("in", "LogSink").ImportById("resultsFeed");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(4.5);
  EXPECT_GE(log->size(), 3u);
}

TEST(ImportExportTest, LateExporterConnectsToWaitingImporter) {
  // Importer submitted first; exporter arrives later — the SPL runtime
  // connects them automatically when both run (§2.1).
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ImporterByPropsApp("Imp", "LogSink",
                                                {{"topic", "scores"}}))
                  .ok());
  cluster.sim().RunUntil(10);
  EXPECT_EQ(log->size(), 0u);
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ExporterApp("Exp", "", {{"topic", "scores"}}))
                  .ok());
  cluster.sim().RunUntil(15.5);
  EXPECT_GE(log->size(), 4u);
}

TEST(ImportExportTest, CancellingExporterSevereConnection) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  auto exporter = cluster.sam().SubmitJob(
      ExporterApp("Exp", "", {{"topic", "scores"}}));
  ASSERT_TRUE(exporter.ok());
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ImporterByPropsApp("Imp", "LogSink",
                                                {{"topic", "scores"}}))
                  .ok());
  cluster.sim().RunUntil(3.5);
  size_t before = log->size();
  EXPECT_GE(before, 2u);
  ASSERT_TRUE(cluster.sam().CancelJob(*exporter).ok());
  cluster.sim().RunUntil(10);
  EXPECT_EQ(log->size(), before);
}

TEST(ImportExportTest, MultipleImportersShareOneExporter) {
  // Dynamic composition's resource benefit (§4.4): the reused application
  // is instantiated once, its output routed to every consumer.
  ClusterHarness cluster;
  auto* log_a = cluster.AddSinkKind("SinkA");
  auto* log_b = cluster.AddSinkKind("SinkB");
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ExporterApp("Exp", "", {{"topic", "scores"}}))
                  .ok());
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ImporterByPropsApp("ImpA", "SinkA",
                                                {{"topic", "scores"}}))
                  .ok());
  ASSERT_TRUE(cluster.sam()
                  .SubmitJob(ImporterByPropsApp("ImpB", "SinkB",
                                                {{"topic", "scores"}}))
                  .ok());
  cluster.sim().RunUntil(4.5);
  EXPECT_GE(log_a->size(), 3u);
  EXPECT_EQ(log_a->size(), log_b->size());
}

}  // namespace
}  // namespace orcastream::runtime
