#include <gtest/gtest.h>

#include "orca/orca_service.h"
#include "tests/test_util.h"

namespace orcastream::orca {
namespace {

using common::JobId;
using common::PeId;
using common::TimerId;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::Tuple;

ApplicationModel CountingApp(const std::string& name) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon").Output("raw").Param("period", 1.0);
  builder.AddOperator("snk", "CountingSink").Input("raw");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

/// Recording orchestrator: registers broad scopes on start and records
/// every delivered event for inspection.
class RecordingOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext& context) override {
    start_count++;
    start_at = context.at;
    OperatorMetricScope oms("allOpMetrics");
    oms.SetMetricKindFilter(runtime::MetricKind::kCustom);
    orca.RegisterEventScope(oms);
    PeFailureScope pfs("allFailures");
    orca.RegisterEventScope(pfs);
    JobEventScope jes("allJobs");
    orca.RegisterEventScope(jes);
    UserEventScope ues("allUser");
    orca.RegisterEventScope(ues);
  }
  void HandleOperatorMetricEvent(
      OrcaContext&, const OperatorMetricContext& context,
      const std::vector<std::string>& scopes) override {
    metric_events.push_back(context);
    metric_scopes.push_back(scopes);
  }
  void HandlePeFailureEvent(OrcaContext&, const PeFailureContext& context,
                            const std::vector<std::string>&) override {
    failure_events.push_back(context);
  }
  void HandleJobSubmissionEvent(OrcaContext&, const JobEventContext& context,
                                const std::vector<std::string>&) override {
    submissions.push_back(context);
  }
  void HandleJobCancellationEvent(OrcaContext&,
                                  const JobEventContext& context,
                                  const std::vector<std::string>&) override {
    cancellations.push_back(context);
  }
  void HandleTimerEvent(OrcaContext&, const TimerContext& context) override {
    timer_events.push_back(context);
  }
  void HandleUserEvent(OrcaContext&, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    user_events.push_back(context);
  }

  int start_count = 0;
  double start_at = -1;
  std::vector<OperatorMetricContext> metric_events;
  std::vector<std::vector<std::string>> metric_scopes;
  std::vector<PeFailureContext> failure_events;
  std::vector<JobEventContext> submissions;
  std::vector<JobEventContext> cancellations;
  std::vector<TimerContext> timer_events;
  std::vector<UserEventContext> user_events;
};

class OrcaServiceTest : public ::testing::Test {
 protected:
  OrcaServiceTest() : cluster_(3) {
    cluster_.factory().RegisterOrReplace("CountingSink", [] {
      return std::make_unique<ops::CallbackSink>(
          [](const Tuple&, runtime::OperatorContext* ctx) {
            ctx->CreateCustomMetric("nSeen");
            ctx->AddToCustomMetric("nSeen", 1);
          });
    });
    service_ = std::make_unique<OrcaService>(&cluster_.sim(), &cluster_.sam(),
                                             &cluster_.srm());
    auto logic = std::make_unique<RecordingOrca>();
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());
  }

  void RegisterAndRun(const std::string& id, const std::string& app_name,
                      double until) {
    AppConfig config;
    config.id = id;
    config.application_name = app_name;
    ASSERT_TRUE(
        service_->RegisterApplication(config, CountingApp(app_name)).ok());
    ASSERT_TRUE(service_->SubmitApplication(id).ok());
    cluster_.sim().RunUntil(until);
  }

  ClusterHarness cluster_;
  std::unique_ptr<OrcaService> service_;
  RecordingOrca* logic_;
};

TEST_F(OrcaServiceTest, StartEventDeliveredOnce) {
  cluster_.sim().RunUntil(1);
  EXPECT_EQ(logic_->start_count, 1);
  EXPECT_GE(logic_->start_at, 0.0);
}

TEST_F(OrcaServiceTest, DoubleLoadRejected) {
  EXPECT_TRUE(service_->Load(std::make_unique<RecordingOrca>())
                  .IsFailedPrecondition());
}

TEST_F(OrcaServiceTest, MetricEventsCarryEpochAndScopeKeys) {
  RegisterAndRun("app", "App", /*until=*/31);
  // First pull at t=15 sees the custom metric, second at t=30.
  ASSERT_GE(logic_->metric_events.size(), 2u);
  const auto& first = logic_->metric_events.front();
  EXPECT_EQ(first.application, "App");
  EXPECT_EQ(first.instance_name, "snk");
  EXPECT_EQ(first.metric, "nSeen");
  EXPECT_EQ(first.metric_kind, runtime::MetricKind::kCustom);
  EXPECT_GT(first.value, 0);
  EXPECT_EQ(first.epoch, 1);
  EXPECT_EQ(logic_->metric_scopes.front(),
            (std::vector<std::string>{"allOpMetrics"}));
  // Values grow across pulls, epochs advance.
  const auto& last = logic_->metric_events.back();
  EXPECT_EQ(last.epoch, 2);
  EXPECT_GT(last.value, first.value);
}

TEST_F(OrcaServiceTest, MetricsMeasuredTogetherShareEpoch) {
  RegisterAndRun("a", "AppA", 0.5);
  RegisterAndRun("b", "AppB", 16);
  // Both jobs' metrics come from the same pull round → same epoch.
  ASSERT_GE(logic_->metric_events.size(), 2u);
  std::set<std::string> apps;
  for (const auto& event : logic_->metric_events) {
    EXPECT_EQ(event.epoch, 1);
    apps.insert(event.application);
  }
  EXPECT_EQ(apps, (std::set<std::string>{"AppA", "AppB"}));
}

TEST_F(OrcaServiceTest, PullPeriodIsAdjustable) {
  service_->SetMetricPullPeriod(2.0);
  EXPECT_EQ(service_->metric_pull_period(), 2.0);
  RegisterAndRun("app", "App", 15.5);
  // Pull task fires on its old schedule once (t=15) unless already
  // rescheduled; with the period change taking effect after the next
  // firing, we simply require more rounds than the default would give.
  cluster_.sim().RunUntil(30);
  EXPECT_GE(service_->metric_epoch(), 5);
}

TEST_F(OrcaServiceTest, PeFailureEventDelivered) {
  RegisterAndRun("app", "App", 5);
  auto job = service_->RunningJob("app");
  ASSERT_TRUE(job.ok());
  auto pe = cluster_.sam().FindJob(job.value())->PeOfOperator("snk");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(cluster_.sam().KillPe(pe.value(), "segfault").ok());
  cluster_.sim().RunUntil(8);
  ASSERT_EQ(logic_->failure_events.size(), 1u);
  const auto& event = logic_->failure_events[0];
  EXPECT_EQ(event.pe, pe.value());
  EXPECT_EQ(event.application, "App");
  EXPECT_EQ(event.reason, "segfault");
  EXPECT_EQ(event.operators, (std::vector<std::string>{"snk"}));
  EXPECT_EQ(event.epoch, 1);
}

TEST_F(OrcaServiceTest, HostFailureSharesOneEpoch) {
  // All PEs on one host: a host failure produces several PE failure
  // events grouped under a single epoch (§4.2).
  ClusterHarness single(1);
  single.factory().RegisterOrReplace("CountingSink", [] {
    return std::make_unique<ops::CallbackSink>(
        [](const Tuple&, runtime::OperatorContext*) {});
  });
  OrcaService service(&single.sim(), &single.sam(), &single.srm());
  auto logic_holder = std::make_unique<RecordingOrca>();
  RecordingOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, CountingApp("App")).ok());
  ASSERT_TRUE(service.SubmitApplication("app").ok());
  single.sim().RunUntil(2);
  ASSERT_TRUE(single.srm().KillHost(common::HostId(0)).ok());
  single.sim().RunUntil(5);
  ASSERT_EQ(logic->failure_events.size(), 2u);  // two PEs
  EXPECT_EQ(logic->failure_events[0].epoch, logic->failure_events[1].epoch);
  EXPECT_EQ(logic->failure_events[0].reason, "host failure");

  // A later, separate crash gets a new epoch.
  auto job = service.RunningJob("app");
  ASSERT_TRUE(job.ok());
  ASSERT_TRUE(single.srm().ReviveHost(common::HostId(0)).ok());
  auto pe = single.sam().FindJob(job.value())->PeOfOperator("snk");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(single.sam().RestartPe(pe.value()).ok());
  single.sim().RunUntil(6);
  ASSERT_TRUE(single.sam().KillPe(pe.value(), "segfault").ok());
  single.sim().RunUntil(9);
  ASSERT_EQ(logic->failure_events.size(), 3u);
  EXPECT_GT(logic->failure_events[2].epoch, logic->failure_events[0].epoch);
}

TEST_F(OrcaServiceTest, ActingOnUnmanagedJobIsPermissionDenied) {
  // A job submitted directly through SAM is invisible to the service.
  auto foreign = cluster_.sam().SubmitJob(CountingApp("Foreign"));
  ASSERT_TRUE(foreign.ok());
  EXPECT_TRUE(service_->CancelJob(*foreign).IsPermissionDenied());
  auto pe = cluster_.sam().FindJob(*foreign)->PeOfOperator("snk");
  ASSERT_TRUE(pe.ok());
  EXPECT_TRUE(service_->RestartPe(pe.value()).IsPermissionDenied());
  EXPECT_TRUE(service_->StopPe(pe.value()).IsPermissionDenied());
}

TEST_F(OrcaServiceTest, ManagedJobActuationsWork) {
  RegisterAndRun("app", "App", 2);
  auto job = service_->RunningJob("app");
  ASSERT_TRUE(job.ok());
  auto pe = cluster_.sam().FindJob(job.value())->PeOfOperator("snk");
  ASSERT_TRUE(pe.ok());
  ASSERT_TRUE(service_->StopPe(pe.value()).ok());
  ASSERT_TRUE(service_->RestartPe(pe.value()).ok());
  ASSERT_TRUE(service_->CancelJob(job.value()).ok());
  EXPECT_FALSE(service_->IsRunning("app"));
  cluster_.sim().RunUntil(4);
  ASSERT_EQ(logic_->cancellations.size(), 1u);
  EXPECT_EQ(logic_->cancellations[0].config_id, "app");
}

TEST_F(OrcaServiceTest, JobEventsDelivered) {
  RegisterAndRun("app", "App", 2);
  ASSERT_EQ(logic_->submissions.size(), 1u);
  EXPECT_EQ(logic_->submissions[0].application, "App");
  EXPECT_EQ(logic_->submissions[0].config_id, "app");
  ASSERT_TRUE(service_->CancelApplication("app").ok());
  cluster_.sim().RunUntil(4);
  ASSERT_EQ(logic_->cancellations.size(), 1u);
}

TEST_F(OrcaServiceTest, ExclusivePoolsMustPrecedeSubmission) {
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(
      service_->RegisterApplication(config, CountingApp("App")).ok());
  ASSERT_TRUE(service_->SetExclusiveHostPools("app").ok());
  ASSERT_TRUE(service_->SubmitApplication("app").ok());
  cluster_.sim().RunUntil(1);
  EXPECT_TRUE(service_->SetExclusiveHostPools("app").IsFailedPrecondition());
  // The submitted job landed on hosts nobody else can use now; a second
  // exclusive copy lands elsewhere.
  auto job = service_->RunningJob("app");
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(cluster_.sam().FindJob(job.value())->running);
}

TEST_F(OrcaServiceTest, TimersOneShotAndRecurring) {
  TimerId once = service_->CreateTimer(5.0, "once");
  TimerId recurring = service_->CreateTimer(2.0, "tick", true, 2.0);
  cluster_.sim().RunUntil(9);
  // tick at 2,4,6,8 + once at 5 = 5 events.
  ASSERT_EQ(logic_->timer_events.size(), 5u);
  int once_count = 0, tick_count = 0;
  for (const auto& event : logic_->timer_events) {
    if (event.name == "once") {
      ++once_count;
      EXPECT_EQ(event.id, once);
    }
    if (event.name == "tick") ++tick_count;
  }
  EXPECT_EQ(once_count, 1);
  EXPECT_EQ(tick_count, 4);
  service_->CancelTimer(recurring);
  cluster_.sim().RunUntil(20);
  EXPECT_EQ(logic_->timer_events.size(), 5u);
}

TEST_F(OrcaServiceTest, UserEventsReachLogic) {
  cluster_.sim().RunUntil(1);
  service_->InjectUserEvent("modelRefresh", {{"reason", "manual"}});
  cluster_.sim().RunUntil(2);
  ASSERT_EQ(logic_->user_events.size(), 1u);
  EXPECT_EQ(logic_->user_events[0].name, "modelRefresh");
  EXPECT_EQ(logic_->user_events[0].attributes.at("reason"), "manual");
}

TEST_F(OrcaServiceTest, GraphViewTracksManagedJobs) {
  RegisterAndRun("app", "App", 2);
  auto job = service_->RunningJob("app");
  ASSERT_TRUE(job.ok());
  EXPECT_TRUE(service_->graph().HasJob(job.value()));
  auto pe = service_->graph().PeOfOperator(job.value(), "src");
  EXPECT_TRUE(pe.ok());
  ASSERT_TRUE(service_->CancelApplication("app").ok());
  EXPECT_FALSE(service_->graph().HasJob(job.value()));
}

TEST_F(OrcaServiceTest, EventsDeliveredOneAtATimeInOrder) {
  cluster_.sim().RunUntil(1);
  // Inject a burst of user events; they must arrive in injection order.
  for (int i = 0; i < 10; ++i) {
    service_->InjectUserEvent("burst" + std::to_string(i));
  }
  EXPECT_GE(service_->queue_depth(), 9u);  // queued, not yet delivered
  cluster_.sim().RunUntil(2);
  ASSERT_EQ(logic_->user_events.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(logic_->user_events[i].name, "burst" + std::to_string(i));
  }
  EXPECT_EQ(service_->queue_depth(), 0u);
  EXPECT_GE(service_->events_delivered(), 11u);  // + start event
}

TEST_F(OrcaServiceTest, ShutdownStopsEventFlow) {
  RegisterAndRun("app", "App", 2);
  service_->Shutdown();
  EXPECT_FALSE(service_->loaded());
  cluster_.sim().RunUntil(40);
  EXPECT_TRUE(logic_ != nullptr);  // logic destroyed; pointer just dangles
  // No crash and no further pulls: nothing to assert beyond survival.
}

// --- Scope lifecycle across logic turnover ---------------------------------

/// Registers one filtered user-event scope under its own key on start and
/// records every delivery with its matched keys.
class NamedScopeOrca : public Orchestrator {
 public:
  NamedScopeOrca(std::string scope_key, std::string name_filter)
      : scope_key_(std::move(scope_key)),
        name_filter_(std::move(name_filter)) {}

  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    UserEventScope scope(scope_key_);
    scope.AddNameFilter(name_filter_);
    orca.RegisterEventScope(std::move(scope));
  }
  void HandleUserEvent(OrcaContext&, const UserEventContext& context,
                       const std::vector<std::string>& scopes) override {
    delivered.push_back(context.name);
    matched.push_back(scopes);
  }

  std::vector<std::string> delivered;
  std::vector<std::vector<std::string>> matched;

 private:
  std::string scope_key_;
  std::string name_filter_;
};

TEST_F(OrcaServiceTest, ReplaceLogicRetiresPredecessorScopes) {
  cluster_.sim().RunUntil(1);
  // The fixture's RecordingOrca registered 4 scopes on start, among them
  // the wildcard user-event scope "allUser".
  EXPECT_EQ(service_->scopes().size(), 4u);

  auto replacement_holder =
      std::make_unique<NamedScopeOrca>("b-scope", "beta");
  NamedScopeOrca* replacement = replacement_holder.get();
  ASSERT_TRUE(service_->ReplaceLogic(std::move(replacement_holder)).ok());
  cluster_.sim().RunUntil(2);

  // Only the replacement's own registration is live.
  EXPECT_EQ(service_->scopes().size(), 1u);

  // An event only the predecessor's wildcard scope would have matched must
  // NOT reach the replacement: the predecessor's subscopes are retired,
  // not left matching forever.
  service_->InjectUserEvent("alpha");
  cluster_.sim().RunUntil(3);
  EXPECT_TRUE(replacement->delivered.empty());

  // The replacement's own scope still works, and the matched keys carry
  // only its key — never the predecessor's.
  service_->InjectUserEvent("beta");
  cluster_.sim().RunUntil(4);
  ASSERT_EQ(replacement->delivered, (std::vector<std::string>{"beta"}));
  ASSERT_EQ(replacement->matched.size(), 1u);
  EXPECT_EQ(replacement->matched[0], (std::vector<std::string>{"b-scope"}));
}

TEST_F(OrcaServiceTest, ShutdownRetiresLoadedLogicScopes) {
  cluster_.sim().RunUntil(1);
  EXPECT_EQ(service_->scopes().size(), 4u);
  service_->Shutdown();
  EXPECT_TRUE(service_->scopes().empty());
}

TEST_F(OrcaServiceTest, UnownedScopesSurviveLogicTurnover) {
  cluster_.sim().RunUntil(1);
  service_->Shutdown();
  // Registered while no logic is loaded: owned by no generation.
  service_->RegisterEventScope(UserEventScope("standing"));
  auto logic_holder = std::make_unique<NamedScopeOrca>("own", "beta");
  ASSERT_TRUE(service_->Load(std::move(logic_holder)).ok());
  cluster_.sim().RunUntil(2);
  EXPECT_EQ(service_->scopes().size(), 2u);
  service_->Shutdown();
  // The logic's scope is retired with it; the unowned one stands.
  EXPECT_EQ(service_->scopes().size(), 1u);
}

/// §7 self-recovery: replaces itself with a NamedScopeOrca from inside
/// its own user-event handler, then keeps touching its members — the
/// service must defer destroying it until the handler frame unwinds.
/// ReplaceLogic is a host-lifecycle operation (not part of the
/// OrcaContext capability surface), so the logic holds the service
/// pointer its host handed it — legal on the serial and
/// DeterministicExecutor paths, where handlers run on the sim thread.
class SelfReplacingOrca : public Orchestrator {
 public:
  explicit SelfReplacingOrca(OrcaService* service) : service_(service) {}
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    orca.RegisterEventScope(UserEventScope("self"));
  }
  void HandleUserEvent(OrcaContext&, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    replaced = service_
                   ->ReplaceLogic(
                       std::make_unique<NamedScopeOrca>("next", "beta"))
                   .ok();
    // Our frame is still executing: member access after the replacement
    // must be safe (ASan guards this in CI).
    last_event = context.name;
  }
  bool replaced = false;
  std::string last_event;

 private:
  OrcaService* service_;
};

TEST_F(OrcaServiceTest, InHandlerSelfReplacementIsSafe) {
  cluster_.sim().RunUntil(1);
  ASSERT_TRUE(service_
                  ->ReplaceLogic(
                      std::make_unique<SelfReplacingOrca>(service_.get()))
                  .ok());
  cluster_.sim().RunUntil(2);
  EXPECT_EQ(service_->scopes().size(), 1u);  // just "self"
  service_->InjectUserEvent("go");
  cluster_.sim().RunUntil(3);
  // The replacement installed from inside the handler is live, its start
  // event ran, and only its own scope remains registered.
  EXPECT_TRUE(service_->loaded());
  EXPECT_EQ(service_->scopes().size(), 1u);  // just "next"
  service_->InjectUserEvent("beta");
  cluster_.sim().RunUntil(4);
  EXPECT_GE(service_->events_delivered(), 4u);  // 2 starts + go + beta
}

TEST_F(OrcaServiceTest, ShutdownFencesRetiredGeneration) {
  cluster_.sim().RunUntil(1);
  auto loaded_generation = service_->scopes().current_generation();
  service_->Shutdown();
  // Scopes registered from now on must land in a fresh generation, not
  // the retired one — anything retiring the stale id a second time must
  // not be able to claim them.
  EXPECT_GT(service_->scopes().current_generation(), loaded_generation);
}

TEST_F(OrcaServiceTest, UnregisterEventScopeStopsDelivery) {
  cluster_.sim().RunUntil(1);
  service_->InjectUserEvent("ping");
  cluster_.sim().RunUntil(2);
  EXPECT_EQ(logic_->user_events.size(), 1u);

  EXPECT_EQ(service_->UnregisterEventScope("allUser"), 1u);
  service_->InjectUserEvent("ping");
  cluster_.sim().RunUntil(3);
  // No live scope matches: the event is filtered out before publication.
  EXPECT_EQ(logic_->user_events.size(), 1u);
  // Unknown keys are a no-op.
  EXPECT_EQ(service_->UnregisterEventScope("allUser"), 0u);
}

}  // namespace
}  // namespace orcastream::orca
