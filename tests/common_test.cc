#include <gtest/gtest.h>

#include "common/ids.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace orcastream::common {
namespace {

// --- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

// --- Result ------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::InvalidArgument("bad"));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
  EXPECT_EQ(result.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Doubled(Result<int> input) {
  ORCA_ASSIGN_OR_RETURN(int value, input);
  return value * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = Doubled(Status::NotFound("no input"));
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsNotFound());
}

// --- Strings -------------------------------------------------------------------

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("solo", ','), (std::vector<std::string>{"solo"}));
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"one"}, ","), "one");
}

TEST(StringsTest, StrTrim) {
  EXPECT_EQ(StrTrim("  x  "), "x");
  EXPECT_EQ(StrTrim("\t\nabc\r\n"), "abc");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("composite1.op3", "composite1"));
  EXPECT_FALSE(StartsWith("op3", "composite1"));
  EXPECT_TRUE(EndsWith("stream_out", "_out"));
  EXPECT_FALSE(EndsWith("x", "long_suffix"));
}

// --- Ids -----------------------------------------------------------------------

TEST(IdsTest, InvalidByDefault) {
  JobId job;
  EXPECT_FALSE(job.valid());
  EXPECT_EQ(job, JobId::Invalid());
}

TEST(IdsTest, DistinctTypesAndOrdering) {
  JobId a(1), b(2);
  EXPECT_TRUE(a < b);
  EXPECT_NE(a, b);
  EXPECT_EQ(JobId(1), a);
  // Different tag types with equal values are different C++ types; this
  // must not compile if uncommented:
  // EXPECT_EQ(JobId(1), PeId(1));
  PeId pe(1);
  EXPECT_TRUE(pe.valid());
}

TEST(IdsTest, Hashable) {
  std::unordered_map<JobId, int> map;
  map[JobId(3)] = 7;
  EXPECT_EQ(map.at(JobId(3)), 7);
}

// --- Rng -----------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, RangesRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
    double d = rng.UniformDouble(0.0, 1.0);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
  // Degenerate all-zero weights fall back to the last index.
  EXPECT_EQ(rng.WeightedIndex({0.0, 0.0}), 1u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(99);
  Rng child = parent.Fork();
  // The child stream must not simply mirror the parent.
  int differing = 0;
  for (int i = 0; i < 20; ++i) {
    if (parent.UniformInt(0, 1 << 30) != child.UniformInt(0, 1 << 30)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

// --- Logging ---------------------------------------------------------------------

TEST(LoggingTest, RespectsLevelAndSink) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  auto old_sink = Logger::Global().SwapSink(
      [&captured](LogLevel level, const std::string& message) {
        captured.emplace_back(level, message);
      });
  LogLevel old_level = Logger::Global().level();
  Logger::Global().set_level(LogLevel::kInfo);

  ORCA_LOG(kDebug) << "hidden";
  ORCA_LOG(kInfo) << "shown " << 42;
  ORCA_LOG(kError) << "error";

  Logger::Global().set_level(old_level);
  Logger::Global().SwapSink(old_sink);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "shown 42");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

}  // namespace
}  // namespace orcastream::common
