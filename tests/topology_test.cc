#include <gtest/gtest.h>

#include "topology/app_builder.h"
#include "topology/app_model.h"

namespace orcastream::topology {
namespace {

/// Builds the paper's Figure 2 application: op1/op2 feeding two instances
/// of a split-and-merge composite (composite1), followed by op10..op40
/// style consumers (abbreviated as sink operators here).
ApplicationModel BuildFigure2() {
  AppBuilder builder("Figure2");
  auto split_merge = [](AppBuilder& b) {
    b.AddOperator("op3", "Split").Input("in").Output("s3a").Output("s3b");
    b.AddOperator("op4", "Filter").Input("s3a").Output("s4");
    b.AddOperator("op5", "Filter").Input("s3b").Output("s5");
    b.AddOperator("op6", "Merge").Input({"s4", "s5"}).Output("out");
  };
  builder.AddOperator("op1", "Beacon").Output("src1");
  builder.AddOperator("op2", "Beacon").Output("src2");

  builder.BeginComposite("composite1", "c1a");
  builder.AddOperator("in_fwd", "Merge").Input({"src1"}).Output("in");
  split_merge(builder);
  builder.EndComposite();

  builder.BeginComposite("composite1", "c1b");
  builder.AddOperator("in_fwd", "Merge").Input({"src2"}).Output("in");
  split_merge(builder);
  builder.EndComposite();

  builder.AddOperator("sinkA", "NullSink").Input("c1a.out");
  builder.AddOperator("sinkB", "NullSink").Input("c1b.out");
  auto built = builder.Build();
  EXPECT_TRUE(built.ok()) << built.status();
  return built.ValueOr(ApplicationModel("invalid"));
}

TEST(AppBuilderTest, QualifiesNamesWithCompositeScope) {
  ApplicationModel model = BuildFigure2();
  EXPECT_NE(model.FindOperator("op1"), nullptr);
  EXPECT_NE(model.FindOperator("c1a.op3"), nullptr);
  EXPECT_NE(model.FindOperator("c1b.op6"), nullptr);
  EXPECT_EQ(model.FindOperator("op3"), nullptr);  // only qualified names
}

TEST(AppBuilderTest, RecordsCompositeContainment) {
  ApplicationModel model = BuildFigure2();
  const OperatorDef* op = model.FindOperator("c1a.op4");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->composite, "c1a");
  const CompositeInstanceDef* comp = model.FindComposite("c1a");
  ASSERT_NE(comp, nullptr);
  EXPECT_EQ(comp->kind, "composite1");
  EXPECT_EQ(comp->parent, "");
  EXPECT_EQ(model.EnclosingComposites("c1a.op4"),
            (std::vector<std::string>{"c1a"}));
  EXPECT_TRUE(model.EnclosingComposites("op1").empty());
}

TEST(AppBuilderTest, NestedComposites) {
  AppBuilder builder("Nested");
  builder.BeginComposite("outer", "o");
  builder.AddOperator("src", "Beacon").Output("s");
  builder.BeginComposite("inner", "i");
  builder.AddOperator("sink", "NullSink").Input({"o.s"});
  builder.EndComposite();
  builder.EndComposite();
  auto model = builder.Build();
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_NE(model->FindOperator("o.i.sink"), nullptr);
  EXPECT_EQ(model->FindComposite("o.i")->parent, "o");
  EXPECT_EQ(model->EnclosingComposites("o.i.sink"),
            (std::vector<std::string>{"o.i", "o"}));
}

TEST(AppBuilderTest, InstantiateTemplateTwice) {
  AppBuilder builder("Reuse");
  builder.AddOperator("src", "Beacon").Output("raw");
  AppBuilder::CompositeTemplate tmpl = [](AppBuilder& b) {
    b.AddOperator("stage", "Filter").Input({"raw"}).Output("filtered");
  };
  builder.Instantiate("stageComp", "a", tmpl);
  builder.Instantiate("stageComp", "b", tmpl);
  builder.AddOperator("sinkA", "NullSink").Input("a.filtered");
  builder.AddOperator("sinkB", "NullSink").Input("b.filtered");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_NE(model->FindOperator("a.stage"), nullptr);
  EXPECT_NE(model->FindOperator("b.stage"), nullptr);
  EXPECT_EQ(model->FindComposite("a")->kind, "stageComp");
  EXPECT_EQ(model->FindComposite("b")->kind, "stageComp");
}

TEST(AppBuilderTest, UnclosedCompositeFailsBuild) {
  AppBuilder builder("Bad");
  builder.BeginComposite("c", "x");
  builder.AddOperator("src", "Beacon").Output("s");
  auto model = builder.Build();
  EXPECT_TRUE(model.status().IsFailedPrecondition());
}

TEST(AppModelValidateTest, DuplicateOperatorRejected) {
  AppBuilder builder("Dup");
  builder.AddOperator("x", "Beacon").Output("s1");
  builder.AddOperator("x", "Beacon").Output("s2");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(AppModelValidateTest, DuplicateStreamRejected) {
  AppBuilder builder("Dup");
  builder.AddOperator("a", "Beacon").Output("s");
  builder.AddOperator("b", "Beacon").Output("s");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(AppModelValidateTest, UnknownStreamSubscriptionRejected) {
  AppBuilder builder("Bad");
  builder.AddOperator("sink", "NullSink").Input("ghost");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(AppModelValidateTest, UnknownHostPoolRejected) {
  AppBuilder builder("Bad");
  builder.AddOperator("src", "Beacon").Output("s").Pool("nonexistent");
  EXPECT_TRUE(builder.Build().status().IsInvalidArgument());
}

TEST(AppModelValidateTest, EmptyInputPortRejected) {
  ApplicationModel model("Bad");
  OperatorDef op;
  op.name = "x";
  op.kind = "NullSink";
  op.inputs.push_back(InputPortDef{});  // subscribes to nothing
  model.operators().push_back(op);
  EXPECT_TRUE(model.Validate().IsInvalidArgument());
}

TEST(AppModelValidateTest, ImportOnlyPortIsValid) {
  AppBuilder builder("Importer");
  builder.AddOperator("sink", "NullSink")
      .ImportByProperties({{"kind", "profiles"}});
  EXPECT_TRUE(builder.Build().ok());
}

TEST(AppModelTest, FindStreamProducer) {
  ApplicationModel model = BuildFigure2();
  auto producer = model.FindStreamProducer("c1a.s4");
  ASSERT_TRUE(producer.ok());
  EXPECT_EQ(producer->op->name, "c1a.op4");
  EXPECT_EQ(producer->port, 0u);
  EXPECT_TRUE(model.FindStreamProducer("nope").status().IsNotFound());
}

TEST(AppModelTest, MakeHostPoolsExclusiveWithPools) {
  AppBuilder builder("App");
  builder.AddHostPool("pool1", {"rack1"}, false);
  builder.AddOperator("src", "Beacon").Output("s").Pool("pool1");
  builder.AddOperator("sink", "NullSink").Input("s");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  model->MakeHostPoolsExclusive();
  EXPECT_TRUE(model->host_pools()[0].exclusive);
  // The untagged operator joins the first pool.
  EXPECT_EQ(model->FindOperator("sink")->host_pool, "pool1");
}

TEST(AppModelTest, MakeHostPoolsExclusiveSynthesizesPool) {
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon").Output("s");
  builder.AddOperator("sink", "NullSink").Input("s");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  model->MakeHostPoolsExclusive();
  ASSERT_EQ(model->host_pools().size(), 1u);
  EXPECT_TRUE(model->host_pools()[0].exclusive);
  EXPECT_EQ(model->FindOperator("src")->host_pool,
            model->host_pools()[0].name);
}

TEST(AppBuilderTest, ParamsAndConstraints) {
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("s")
      .Param("period", 0.5)
      .Param("count", static_cast<int64_t>(10))
      .Param("mode", "fast")
      .Colocate("grp")
      .Exlocate("xl")
      .CostPerTuple(0.001);
  builder.AddOperator("sink", "NullSink").Input("s").Colocate("grp");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  const OperatorDef* op = model->FindOperator("src");
  EXPECT_EQ(op->params.at("mode"), "fast");
  EXPECT_EQ(op->params.at("count"), "10");
  EXPECT_EQ(op->partition_colocation, "grp");
  EXPECT_EQ(op->host_exlocation, "xl");
  EXPECT_EQ(op->cost_per_tuple, 0.001);
}

TEST(AppBuilderTest, ExportAndImportSpecs) {
  AppBuilder builder("Exporter");
  builder.AddOperator("src", "Beacon")
      .Output("results")
      .Export("resultsId", {{"kind", "aggregated"}});
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  const OutputPortDef& out = model->FindOperator("src")->outputs[0];
  EXPECT_TRUE(out.exported);
  EXPECT_EQ(out.export_id, "resultsId");
  EXPECT_EQ(out.export_properties.at("kind"), "aggregated");
}

}  // namespace
}  // namespace orcastream::topology
