// Fraud-pipeline use case (soak scenario (b) driven directly): the
// logic version carries the scoring model, so ReplaceLogic mid-burst is
// a model hot-swap under live traffic. The v1 model (threshold 0.95)
// flags only the top quarter of fraudulent risk scores — a flag rate
// below the alert threshold — while v2 (0.75) catches the whole burst,
// raises the alert, tightens the pull period, and clears again once the
// burst subsides.
#include <gtest/gtest.h>

#include "apps/fraud_app.h"
#include "apps/fraud_orca.h"
#include "harness/scenarios.h"
#include "orca/orca_service.h"
#include "runtime/failure_injector.h"
#include "tests/test_util.h"

namespace orcastream::apps {
namespace {

using orcastream::testing::ClusterHarness;

class FraudUseCaseTest : public ::testing::Test {
 protected:
  static constexpr char kAppName[] = "FraudPipeline";
  static constexpr double kBurstStart = 60;
  static constexpr double kBurstEnd = 140;

  FraudUseCaseTest() : cluster_(8) {
    service_ = std::make_unique<orca::OrcaService>(
        &cluster_.sim(), &cluster_.sam(), &cluster_.srm());

    PaymentWorkload workload;
    workload.burst_start = kBurstStart;
    workload.burst_end = kBurstEnd;
    workload.burst_fraud_fraction = 0.5;
    handles_ = FraudApp::Register(&cluster_.factory(), kAppName, workload,
                                  FraudModel{0.9, 0});  // bootstrap, version 0
    auto model = FraudApp::Build(kAppName);
    EXPECT_TRUE(model.ok()) << model.status();
    orca::AppConfig config;
    config.id = "fraud_main";
    config.application_name = kAppName;
    EXPECT_TRUE(service_->RegisterApplication(config, *model).ok());

    auto v1 = std::make_unique<FraudOrca>(OrcaConfig(0.95));
    v1_ = v1.get();
    EXPECT_TRUE(service_->Load(std::move(v1)).ok());
  }

  FraudOrca::Config OrcaConfig(double flag_threshold) {
    FraudOrca::Config config;
    config.app_id = "fraud_main";
    config.app_name = kAppName;
    config.deploy_model.flag_threshold = flag_threshold;
    config.model = handles_.model;
    return config;
  }

  /// Swaps in a v2 logic (model threshold 0.75) at the current sim time.
  FraudOrca* DeployV2() {
    auto v2 = std::make_unique<FraudOrca>(OrcaConfig(0.75));
    FraudOrca* raw = v2.get();
    v1_ = nullptr;  // destroyed by ReplaceLogic
    EXPECT_TRUE(service_->ReplaceLogic(std::move(v2)).ok());
    return raw;
  }

  common::PeId ScorerPe() {
    auto job = service_->RunningJob("fraud_main");
    EXPECT_TRUE(job.ok());
    auto pe = cluster_.sam().FindJob(job.value())->PeOfOperator(
        FraudApp::kScorerName);
    EXPECT_TRUE(pe.ok());
    return pe.ValueOr(common::PeId());
  }

  ClusterHarness cluster_;
  FraudApp::Handles handles_;
  std::unique_ptr<orca::OrcaService> service_;
  FraudOrca* v1_;
};

TEST_F(FraudUseCaseTest, StartDeploysTheVersionedModelAndSubmits) {
  cluster_.sim().RunUntil(5);
  EXPECT_TRUE(service_->IsRunning("fraud_main"));
  // v1's deployment replaced the bootstrap model (version 0 → 1).
  EXPECT_EQ(handles_.model->version(), 1);
  EXPECT_DOUBLE_EQ(handles_.model->Get().flag_threshold, 0.95);
}

TEST_F(FraudUseCaseTest, CalmTrafficAndV1BurstStayBelowTheAlertRate) {
  cluster_.sim().RunUntil(kBurstStart + 30);
  // Calm traffic: ~2% fraud, top quarter flagged — far below the alert
  // rate. Even inside the burst, v1's 0.95 threshold keeps the flag rate
  // at ~12.5%, under the 20% alert line: no alert may fire.
  EXPECT_TRUE(v1_->alerts().empty());
  EXPECT_FALSE(v1_->alerting());
  // The pipeline is scoring and flagging the fraction v1 can see.
  EXPECT_FALSE(handles_.flagged->records().empty());
}

TEST_F(FraudUseCaseTest, HotSwapMidBurstRaisesOnV2AndClearsAfter) {
  cluster_.sim().RunUntil(100);
  ASSERT_TRUE(v1_->alerts().empty());
  FraudOrca* v2 = DeployV2();

  cluster_.sim().RunUntil(kBurstEnd - 5);
  // v2's start delivery installed its model (deployment happens on the
  // start event, not inside ReplaceLogic itself).
  EXPECT_EQ(handles_.model->version(), 2);
  // v2's model sees the burst: flag rate ~50% raises the alert, stamped
  // with the model generation that caught it.
  std::vector<FraudOrca::Alert> alerts = v2->alerts();
  ASSERT_FALSE(alerts.empty());
  EXPECT_TRUE(alerts[0].raised);
  EXPECT_EQ(alerts[0].model_version, 2);
  EXPECT_GE(alerts[0].rate, 0.2);
  EXPECT_TRUE(v2->alerting());

  // Both model generations flagged traffic across the swap boundary.
  bool v1_flagged = false;
  bool v2_flagged = false;
  for (const auto& entry : handles_.flagged->records()) {
    int64_t version = entry.tuple.IntOr("modelVersion", -1);
    if (version == 1) v1_flagged = true;
    if (version == 2) v2_flagged = true;
  }
  EXPECT_TRUE(v1_flagged);
  EXPECT_TRUE(v2_flagged);

  // Once the burst ends the rate collapses to the ~2% calm level and the
  // alert clears.
  cluster_.sim().RunUntil(kBurstEnd + 30);
  alerts = v2->alerts();
  ASSERT_GE(alerts.size(), 2u);
  EXPECT_FALSE(alerts.back().raised);
  EXPECT_FALSE(v2->alerting());
}

TEST_F(FraudUseCaseTest, ScorerCrashRestartsUnderTheCurrentLogic) {
  runtime::FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  cluster_.sim().RunUntil(29);
  common::PeId crashed = ScorerPe();
  injector.KillPeAt(30, crashed, "scorer crash");
  cluster_.sim().RunUntil(45);
  EXPECT_EQ(v1_->restarts(), 1u);
  EXPECT_TRUE(cluster_.sam().FindPe(crashed)->running());
  EXPECT_TRUE(service_->IsRunning("fraud_main"));
}

TEST_F(FraudUseCaseTest, FullScenarioHealthyOnTheSerialOracle) {
  auto scenario = harness::MakeFraudPipelineScenario();
  harness::RunResult result = orcastream::testing::RunHealthyScenario(
      *scenario, orcastream::testing::SerialScenarioOptions());
  EXPECT_TRUE(result.journal.count(kAppName));
}

}  // namespace
}  // namespace orcastream::apps
