#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace orcastream::sim {
namespace {

TEST(SimulationTest, RunsEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(3.0, [&] { order.push_back(3); });
  sim.ScheduleAt(1.0, [&] { order.push_back(1); });
  sim.ScheduleAt(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 3.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(SimulationTest, FifoAtSameTimestamp) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulationTest, ScheduleAfterUsesNow) {
  Simulation sim;
  double fired_at = -1;
  sim.ScheduleAt(5.0, [&] {
    sim.ScheduleAfter(2.5, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 7.5);
}

TEST(SimulationTest, PastTimesClampToNow) {
  Simulation sim;
  double fired_at = -1;
  sim.ScheduleAt(5.0, [&] {
    sim.ScheduleAt(1.0, [&] { fired_at = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired_at, 5.0);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(1.0, [&] { fired = true; });
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelAfterFireIsNoop) {
  Simulation sim;
  EventId id = sim.ScheduleAt(1.0, [] {});
  sim.Run();
  sim.Cancel(id);  // must not corrupt bookkeeping
  EXPECT_EQ(sim.pending_events(), 0u);
  bool fired = false;
  sim.ScheduleAfter(1.0, [&] { fired = true; });
  sim.Run();
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  std::vector<double> fired;
  sim.ScheduleAt(1.0, [&] { fired.push_back(1.0); });
  sim.ScheduleAt(2.0, [&] { fired.push_back(2.0); });
  sim.ScheduleAt(10.0, [&] { fired.push_back(10.0); });
  sim.RunUntil(5.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.Now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.RunFor(5.0);
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(sim.Now(), 10.0);
}

TEST(SimulationTest, RunUntilAdvancesClockWithEmptyQueue) {
  Simulation sim;
  sim.RunUntil(42.0);
  EXPECT_EQ(sim.Now(), 42.0);
}

TEST(SimulationTest, StopHaltsRun) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.ScheduleAt(i, [&] {
      ++count;
      if (count == 3) sim.Stop();
    });
  }
  sim.Run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(SimulationTest, StepExecutesOneEvent) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(1.0, [&] { ++count; });
  sim.ScheduleAt(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, EventsScheduledDuringRunExecute) {
  Simulation sim;
  std::vector<double> times;
  sim.ScheduleAt(1.0, [&] {
    times.push_back(sim.Now());
    sim.ScheduleAfter(1.0, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(PeriodicTaskTest, FiresAtPeriod) {
  Simulation sim;
  std::vector<double> fired;
  PeriodicTask task(&sim, 3.0, [&] { fired.push_back(sim.Now()); });
  task.Start(3.0);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, (std::vector<double>{3.0, 6.0, 9.0}));
}

TEST(PeriodicTaskTest, StopCancelsFutureFirings) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(&sim, 1.0, [&] { ++count; });
  task.Start(1.0);
  sim.RunUntil(2.5);
  EXPECT_EQ(count, 2);
  task.Stop();
  sim.RunUntil(10.0);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, PeriodChangeTakesEffectAfterPendingFiring) {
  Simulation sim;
  std::vector<double> fired;
  PeriodicTask task(&sim, 1.0, [&] { fired.push_back(sim.Now()); });
  task.Start(1.0);
  sim.RunUntil(2.0);  // fires at 1, 2; next firing already armed for 3
  task.set_period(5.0);
  sim.RunUntil(12.0);  // fires at 3, then every 5 s: 8
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0, 8.0}));
}

TEST(PeriodicTaskTest, CallbackCanStopItself) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(&sim, 1.0, [&] {
    ++count;
    if (count == 2) task.Stop();
  });
  task.Start(1.0);
  sim.RunUntil(10.0);
  EXPECT_EQ(count, 2);
}

TEST(PeriodicTaskTest, RestartAfterStop) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(&sim, 1.0, [&] { ++count; });
  task.Start(1.0);
  sim.RunUntil(1.5);
  task.Stop();
  task.Start(1.0);
  sim.RunUntil(2.5);
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace orcastream::sim
