#include <gtest/gtest.h>

#include "common/xml.h"

namespace orcastream::common {
namespace {

TEST(XmlWriteTest, EmptyElement) {
  XmlElement root("root");
  EXPECT_EQ(root.ToString(), "<?xml version=\"1.0\"?>\n<root/>\n");
}

TEST(XmlWriteTest, AttributesAndChildren) {
  XmlElement root("application");
  root.SetAttr("name", "Figure2");
  XmlElement* op = root.AddChild("operator");
  op->SetAttr("kind", "Split");
  std::string out = root.ToString();
  EXPECT_NE(out.find("<application name=\"Figure2\">"), std::string::npos);
  EXPECT_NE(out.find("<operator kind=\"Split\"/>"), std::string::npos);
}

TEST(XmlWriteTest, EscapesSpecialCharacters) {
  XmlElement root("x");
  root.SetAttr("v", "a<b&c>\"d\"");
  std::string out = root.ToString();
  EXPECT_NE(out.find("a&lt;b&amp;c&gt;&quot;d&quot;"), std::string::npos);
}

TEST(XmlWriteTest, TypedAttributes) {
  XmlElement root("x");
  root.SetAttr("i", static_cast<int64_t>(-5));
  root.SetAttr("d", 2.5);
  root.SetAttr("b", true);
  EXPECT_EQ(root.IntAttr("i").value(), -5);
  EXPECT_EQ(root.DoubleAttr("d").value(), 2.5);
  EXPECT_EQ(root.BoolAttr("b").value(), true);
}

TEST(XmlParseTest, RoundTrip) {
  XmlElement root("application");
  root.SetAttr("name", "app & co");
  XmlElement* child = root.AddChild("operator");
  child->SetAttr("kind", "Merge");
  child->set_text("some text");
  root.AddChild("operator")->SetAttr("kind", "Split");

  auto parsed = ParseXml(root.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const XmlElement& p = **parsed;
  EXPECT_EQ(p.name(), "application");
  EXPECT_EQ(p.Attr("name").value(), "app & co");
  ASSERT_EQ(p.children().size(), 2u);
  EXPECT_EQ(p.children()[0]->Attr("kind").value(), "Merge");
  EXPECT_EQ(p.children()[0]->text(), "some text");
  EXPECT_EQ(p.FindChildren("operator").size(), 2u);
}

TEST(XmlParseTest, DeclarationAndComments) {
  auto parsed = ParseXml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- leading comment -->\n"
      "<root a=\"1\"><!-- inner --><child/></root>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->IntAttr("a").value(), 1);
  EXPECT_NE((*parsed)->FindChild("child"), nullptr);
}

TEST(XmlParseTest, SelfClosingAndNested) {
  auto parsed = ParseXml("<a><b><c x=\"y\"/></b></a>");
  ASSERT_TRUE(parsed.ok());
  const XmlElement* b = (*parsed)->FindChild("b");
  ASSERT_NE(b, nullptr);
  const XmlElement* c = b->FindChild("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->Attr("x").value(), "y");
}

TEST(XmlParseTest, EntityUnescaping) {
  auto parsed = ParseXml("<a v=\"x&amp;y&lt;z\">t&gt;u</a>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ((*parsed)->Attr("v").value(), "x&y<z");
  EXPECT_EQ((*parsed)->text(), "t>u");
}

TEST(XmlParseTest, RejectsMismatchedTags) {
  EXPECT_FALSE(ParseXml("<a></b>").ok());
}

TEST(XmlParseTest, RejectsTrailingContent) {
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
}

TEST(XmlParseTest, RejectsUnterminatedAttribute) {
  EXPECT_FALSE(ParseXml("<a v=\"x></a>").ok());
}

TEST(XmlParseTest, RejectsGarbage) {
  EXPECT_FALSE(ParseXml("not xml at all").ok());
  EXPECT_FALSE(ParseXml("").ok());
}

TEST(XmlParseTest, MissingAttributeIsNotFound) {
  auto parsed = ParseXml("<a/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)->Attr("nope").status().IsNotFound());
  EXPECT_EQ((*parsed)->AttrOr("nope", "dflt"), "dflt");
  EXPECT_FALSE((*parsed)->HasAttr("nope"));
}

TEST(XmlParseTest, BadTypedAttributesAreParseErrors) {
  auto parsed = ParseXml("<a i=\"abc\" b=\"maybe\" d=\"zz\"/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE((*parsed)->IntAttr("i").status().IsParseError());
  EXPECT_TRUE((*parsed)->BoolAttr("b").status().IsParseError());
  EXPECT_TRUE((*parsed)->DoubleAttr("d").status().IsParseError());
}

}  // namespace
}  // namespace orcastream::common
