#include <gtest/gtest.h>

#include "apps/sentiment_app.h"
#include "apps/sentiment_orca.h"
#include "orca/orca_service.h"
#include "tests/test_util.h"

namespace orcastream::apps {
namespace {

using orcastream::testing::ClusterHarness;

/// End-to-end §5.1 scenario (Figure 8), time-compressed: the tweet cause
/// distribution shifts at t=300; the orchestrator must observe the
/// unknown/known ratio crossing 1.0, trigger exactly one Hadoop job
/// (respecting the re-trigger guard), and the ratio must drop back below
/// 1.0 once the recomputed model is installed.
class SentimentUseCaseTest : public ::testing::Test {
 protected:
  static constexpr double kShiftTime = 300;
  static constexpr double kHadoopDuration = 60;
  static constexpr double kGuard = 120;

  SentimentUseCaseTest() : cluster_(4) {
    TweetWorkload workload;
    workload.period = 0.05;  // 20 tweets/s
    workload.shift_time = kShiftTime;
    CauseModel initial;
    initial.known_causes = {"flash", "screen"};
    handles_ = SentimentApp::Register(&cluster_.factory(),
                                      "SentimentAnalysis", workload, initial);

    service_ = std::make_unique<orca::OrcaService>(
        &cluster_.sim(), &cluster_.sam(), &cluster_.srm());
    HadoopSim::Config hadoop_config;
    hadoop_config.job_duration = kHadoopDuration;
    hadoop_config.min_support = 20;
    hadoop_ = std::make_unique<HadoopSim>(&cluster_.sim(), hadoop_config);

    orca::AppConfig config;
    config.id = "sentiment";
    config.application_name = "SentimentAnalysis";
    auto model = SentimentApp::Build("SentimentAnalysis");
    EXPECT_TRUE(model.ok()) << model.status();
    EXPECT_TRUE(service_->RegisterApplication(config, *model).ok());

    SentimentOrca::Config orca_config;
    orca_config.threshold = 1.0;
    orca_config.retrigger_guard = kGuard;
    auto logic = std::make_unique<SentimentOrca>(orca_config, hadoop_.get(),
                                                 handles_);
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());
  }

  ClusterHarness cluster_;
  SentimentApp::Handles handles_;
  std::unique_ptr<orca::OrcaService> service_;
  std::unique_ptr<HadoopSim> hadoop_;
  SentimentOrca* logic_;
};

TEST_F(SentimentUseCaseTest, Figure8Trajectory) {
  cluster_.sim().RunUntil(kShiftTime - 10);
  // Phase 1: causes are known, ratio below threshold, no triggers.
  ASSERT_FALSE(logic_->measurements().empty());
  for (const auto& m : logic_->measurements()) {
    EXPECT_LT(m.ratio, 1.0) << "pre-shift ratio must stay below 1.0";
  }
  EXPECT_TRUE(logic_->trigger_times().empty());
  EXPECT_EQ(hadoop_->jobs_submitted(), 0);

  // Phase 2: the antenna burst drives the ratio over the threshold; the
  // orchestrator submits the Hadoop job once.
  cluster_.sim().RunUntil(kShiftTime + 60);
  ASSERT_EQ(logic_->trigger_times().size(), 1u);
  EXPECT_GT(logic_->trigger_times()[0], kShiftTime);
  EXPECT_EQ(hadoop_->jobs_submitted(), 1);
  double peak = 0;
  for (const auto& m : logic_->measurements()) peak = std::max(peak, m.ratio);
  EXPECT_GT(peak, 1.0);

  // Phase 3: the job completes, the model refreshes, and the ratio falls
  // back under the threshold (Figure 8's tail).
  cluster_.sim().RunUntil(kShiftTime + kHadoopDuration + 120);
  EXPECT_EQ(hadoop_->jobs_completed(), 1);
  EXPECT_EQ(handles_.model->version(), 1);
  EXPECT_TRUE(handles_.model->Get()->Knows("antenna"));
  ASSERT_FALSE(logic_->measurements().empty());
  const auto& tail = logic_->measurements().back();
  EXPECT_LT(tail.ratio, 1.0) << "post-adaptation ratio must recover";
  EXPECT_EQ(tail.model_version, 1);
}

TEST_F(SentimentUseCaseTest, RetriggerGuardLimitsJobRate) {
  // While the model is stale (job still running) the ratio keeps
  // exceeding the threshold, but the guard must prevent a second job
  // within kGuard seconds.
  cluster_.sim().RunUntil(kShiftTime + kGuard - 5);
  EXPECT_LE(hadoop_->jobs_submitted(), 1);
  ASSERT_EQ(logic_->trigger_times().size(), 1u);
}

TEST_F(SentimentUseCaseTest, NegativeTweetsReachTheDiskStore) {
  cluster_.sim().RunUntil(120);
  // ~20 tweets/s * 0.8 product * 0.6 negative ≈ 9.6/s.
  EXPECT_GT(handles_.negative_store->size(), 500u);
  for (const auto& record : handles_.negative_store->records()) {
    EXPECT_EQ(record.tuple.StringOr("sentiment", ""), "negative");
    EXPECT_EQ(record.tuple.StringOr("product", ""), "iPhone");
  }
}

TEST_F(SentimentUseCaseTest, DisplayReceivesAggregatedCauses) {
  cluster_.sim().RunUntil(120);
  ASSERT_GT(handles_.display->size(), 0u);
  // Pre-shift, the top causes must be the known ones.
  std::set<std::string> seen;
  for (const auto& record : handles_.display->records()) {
    seen.insert(record.tuple.StringOr("correlatedCause", ""));
  }
  EXPECT_TRUE(seen.count("flash") > 0 || seen.count("screen") > 0);
}

}  // namespace
}  // namespace orcastream::apps
