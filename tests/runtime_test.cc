#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace orcastream::runtime {
namespace {

using common::JobId;
using common::PeId;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::Tuple;

ApplicationModel BeaconToSink(const std::string& sink_kind, double period,
                              int64_t count) {
  AppBuilder builder("BeaconApp");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", period)
      .Param("count", count);
  builder.AddOperator("snk", sink_kind).Input("raw");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

TEST(RuntimeTest, EndToEndTupleFlow) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  auto job = cluster.sam().SubmitJob(BeaconToSink("LogSink", 1.0, 5));
  ASSERT_TRUE(job.ok()) << job.status();
  cluster.sim().RunUntil(100);
  ASSERT_EQ(log->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*log)[i].GetInt("seq").value(), i);
  }
}

TEST(RuntimeTest, JobInfoRecordsPhysicalLayout) {
  ClusterHarness cluster;
  cluster.AddSinkKind("LogSink");
  auto job = cluster.sam().SubmitJob(BeaconToSink("LogSink", 1.0, 1));
  ASSERT_TRUE(job.ok());
  const JobInfo* info = cluster.sam().FindJob(*job);
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->running);
  EXPECT_EQ(info->app_name, "BeaconApp");
  // No colocation tags: one PE per operator.
  EXPECT_EQ(info->pes.size(), 2u);
  EXPECT_TRUE(info->PeOfOperator("src").ok());
  EXPECT_TRUE(info->PeOfOperator("snk").ok());
  EXPECT_TRUE(info->PeOfOperator("ghost").status().IsNotFound());
}

TEST(RuntimeTest, ColocatedOperatorsShareOnePe) {
  ClusterHarness cluster;
  cluster.AddSinkKind("LogSink");
  AppBuilder builder("Fused");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 1.0)
      .Param("count", 3)
      .Colocate("together");
  builder.AddOperator("snk", "LogSink").Input("raw").Colocate("together");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  const JobInfo* info = cluster.sam().FindJob(*job);
  EXPECT_EQ(info->pes.size(), 1u);
}

TEST(RuntimeTest, CancelJobStopsDataFlow) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  auto job = cluster.sam().SubmitJob(BeaconToSink("LogSink", 1.0, 0));
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(10.5);
  size_t seen = log->size();
  EXPECT_GE(seen, 9u);
  ASSERT_TRUE(cluster.sam().CancelJob(*job).ok());
  cluster.sim().RunUntil(20);
  EXPECT_EQ(log->size(), seen);
  EXPECT_FALSE(cluster.sam().FindJob(*job)->running);
  // Double cancel is an error.
  EXPECT_TRUE(cluster.sam().CancelJob(*job).IsNotFound());
}

TEST(RuntimeTest, SubmissionParamsReachOperators) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  AppBuilder builder("Param");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", "$tickPeriod")  // resolved at submission time
      .Param("count", 2);
  builder.AddOperator("snk", "LogSink").Input("raw");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model, {{"tickPeriod", "5"}});
  ASSERT_TRUE(job.ok());
  // With the resolved period of 5 s, ticks land at t=5 and t=10.
  cluster.sim().RunUntil(6);
  EXPECT_EQ(log->size(), 1u);
  cluster.sim().RunUntil(11);
  EXPECT_EQ(log->size(), 2u);
}

TEST(RuntimeTest, BuiltinMetricsFlowToSrm) {
  ClusterHarness cluster;
  cluster.AddSinkKind("LogSink");
  auto job = cluster.sam().SubmitJob(BeaconToSink("LogSink", 0.5, 10));
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(30);  // plenty of 3 s HC pushes
  MetricsSnapshot snapshot = cluster.srm().QueryMetrics({*job});
  int64_t src_submitted = -1, snk_processed = -1;
  for (const auto& rec : snapshot.operator_metrics) {
    if (rec.port != -1) continue;
    if (rec.operator_name == "src" &&
        rec.metric_name == builtin_metrics::kNumTuplesSubmitted) {
      src_submitted = rec.value;
    }
    if (rec.operator_name == "snk" &&
        rec.metric_name == builtin_metrics::kNumTuplesProcessed) {
      snk_processed = rec.value;
    }
  }
  EXPECT_EQ(src_submitted, 10);
  EXPECT_EQ(snk_processed, 10);
  // PE-level metrics present too.
  bool pe_bytes_seen = false;
  for (const auto& rec : snapshot.pe_metrics) {
    if (rec.metric_name == builtin_metrics::kNumTupleBytesProcessed &&
        rec.value > 0) {
      pe_bytes_seen = true;
    }
  }
  EXPECT_TRUE(pe_bytes_seen);
}

TEST(RuntimeTest, PortLevelMetricsReported) {
  ClusterHarness cluster;
  cluster.AddSinkKind("LogSink");
  auto job = cluster.sam().SubmitJob(BeaconToSink("LogSink", 0.5, 4));
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(10);
  MetricsSnapshot snapshot = cluster.srm().QueryMetrics({*job});
  bool in_port_seen = false, out_port_seen = false;
  for (const auto& rec : snapshot.operator_metrics) {
    if (rec.port == 0 && !rec.output_port && rec.operator_name == "snk" &&
        rec.metric_name == builtin_metrics::kNumTuplesProcessed &&
        rec.value == 4) {
      in_port_seen = true;
    }
    if (rec.port == 0 && rec.output_port && rec.operator_name == "src" &&
        rec.metric_name == builtin_metrics::kNumTuplesSubmitted &&
        rec.value == 4) {
      out_port_seen = true;
    }
  }
  EXPECT_TRUE(in_port_seen);
  EXPECT_TRUE(out_port_seen);
}

TEST(RuntimeTest, CustomMetricsFlowToSrm) {
  ClusterHarness cluster;
  cluster.AddSinkKind("LogSink");
  cluster.factory().RegisterOrReplace("Counting", [] {
    return std::make_unique<ops::CallbackSink>(
        [](const Tuple&, runtime::OperatorContext* ctx) {
          ctx->CreateCustomMetric("nSeen");
          ctx->AddToCustomMetric("nSeen", 1);
        });
  });
  auto job = cluster.sam().SubmitJob(BeaconToSink("Counting", 0.5, 6));
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(10);
  MetricsSnapshot snapshot = cluster.srm().QueryMetrics({*job});
  bool seen = false;
  for (const auto& rec : snapshot.operator_metrics) {
    if (rec.metric_name == "nSeen") {
      EXPECT_EQ(rec.kind, MetricKind::kCustom);
      EXPECT_EQ(rec.value, 6);
      seen = true;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(RuntimeTest, QueueBuildsUpUnderCost) {
  // Source at 100 tuples/s into an operator that takes 0.05 s per tuple:
  // the queue must grow and the queueSize metric must report it.
  ClusterHarness cluster;
  cluster.AddSinkKind("LogSink");
  AppBuilder builder("Overload");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 0.01)
      .Param("count", 0);
  builder.AddOperator("slow", "LogSink").Input("raw").CostPerTuple(0.05);
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(10);
  MetricsSnapshot snapshot = cluster.srm().QueryMetrics({*job});
  int64_t queue_size = -1;
  for (const auto& rec : snapshot.operator_metrics) {
    if (rec.operator_name == "slow" && rec.port == -1 &&
        rec.metric_name == builtin_metrics::kQueueSize) {
      queue_size = rec.value;
    }
  }
  EXPECT_GT(queue_size, 10);
}

TEST(RuntimeTest, StopAndRestartPe) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  auto job = cluster.sam().SubmitJob(BeaconToSink("LogSink", 1.0, 0));
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(5.5);
  size_t before = log->size();
  EXPECT_GE(before, 4u);

  auto src_pe = cluster.sam().FindJob(*job)->PeOfOperator("src");
  ASSERT_TRUE(src_pe.ok());
  // Restarting a running PE is refused.
  EXPECT_TRUE(
      cluster.sam().RestartPe(src_pe.value()).IsFailedPrecondition());
  ASSERT_TRUE(cluster.sam().StopPe(src_pe.value()).ok());
  cluster.sim().RunUntil(10);
  EXPECT_EQ(log->size(), before);  // source stopped, no new tuples

  ASSERT_TRUE(cluster.sam().RestartPe(src_pe.value()).ok());
  cluster.sim().RunUntil(15);
  EXPECT_GT(log->size(), before);  // flowing again
}

TEST(RuntimeTest, UnknownOperatorKindFailsSubmit) {
  ClusterHarness cluster;
  AppBuilder builder("Unknown");
  builder.AddOperator("src", "NoSuchKind").Output("s");
  builder.AddOperator("snk", "NullSink").Input("s");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  EXPECT_FALSE(job.ok());
}

TEST(RuntimeTest, FindJobByNameReturnsLatestRunning) {
  ClusterHarness cluster;
  cluster.AddSinkKind("LogSink");
  auto model = BeaconToSink("LogSink", 1.0, 1);
  auto job1 = cluster.sam().SubmitJob(model);
  auto job2 = cluster.sam().SubmitJob(model);
  ASSERT_TRUE(job1.ok());
  ASSERT_TRUE(job2.ok());
  auto found = cluster.sam().FindJobByName("BeaconApp");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), *job2);
  ASSERT_TRUE(cluster.sam().CancelJob(*job2).ok());
  found = cluster.sam().FindJobByName("BeaconApp");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), *job1);
}

TEST(RuntimeTest, ExclusivePoolKeepsJobsApart) {
  ClusterHarness cluster(/*hosts=*/4);
  cluster.AddSinkKind("LogSink");
  AppBuilder builder("Excl");
  builder.AddHostPool("own", {}, /*exclusive=*/true);
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 1.0)
      .Pool("own")
      .Colocate("one");
  builder.AddOperator("snk", "LogSink").Input("raw").Pool("own").Colocate(
      "one");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job1 = cluster.sam().SubmitJob(*model);
  auto job2 = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job1.ok());
  ASSERT_TRUE(job2.ok());
  common::HostId host1 = cluster.sam().FindJob(*job1)->pes[0].host;
  common::HostId host2 = cluster.sam().FindJob(*job2)->pes[0].host;
  EXPECT_NE(host1, host2);
}

TEST(RuntimeTest, ExlocationSeparatesReplicaPes) {
  ClusterHarness cluster(/*hosts=*/3);
  cluster.AddSinkKind("LogSink");
  AppBuilder builder("Exloc");
  builder.AddOperator("a", "Beacon").Output("s1").Exlocate("spread");
  builder.AddOperator("b", "Beacon").Output("s2").Exlocate("spread");
  builder.AddOperator("c", "NullSink").Input({"s1", "s2"});
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  const JobInfo* info = cluster.sam().FindJob(*job);
  common::HostId host_a, host_b;
  for (const auto& pe : info->pes) {
    if (pe.operators[0] == "a") host_a = pe.host;
    if (pe.operators[0] == "b") host_b = pe.host;
  }
  EXPECT_NE(host_a, host_b);
}

}  // namespace
}  // namespace orcastream::runtime
