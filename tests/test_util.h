#ifndef ORCASTREAM_TESTS_TEST_UTIL_H_
#define ORCASTREAM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "harness/scenario.h"
#include "harness/scenarios.h"
#include "harness/slo_report.h"
#include "harness/soak_driver.h"
#include "net/remote_bridge.h"
#include "ops/sinks.h"
#include "orca/orca_service.h"
#include "ops/standard.h"
#include "runtime/failure_injector.h"
#include "runtime/sam.h"
#include "runtime/srm.h"
#include "sim/simulation.h"
#include "topology/app_builder.h"

namespace orcastream::testing {

/// How a ClusterHarness-built OrcaService receives detection events.
enum class SinkMode {
  /// The service is its own failure sink (direct function calls).
  kInProcess,
  /// Events cross the src/net framed transport over an inline loopback
  /// pair — same observable behaviour, real wire format in between.
  kRemote,
};

/// Spins up a small simulated cluster (SRM + SAM + standard operators) for
/// runtime-level tests. Collected sink output is recorded per sink kind.
class ClusterHarness {
 public:
  explicit ClusterHarness(int hosts = 3,
                          runtime::Sam::Config sam_config = {},
                          runtime::Srm::Config srm_config = {})
      : srm_(&sim_, srm_config) {
    for (int i = 0; i < hosts; ++i) {
      srm_.AddHost("host" + std::to_string(i));
    }
    ops::RegisterStandardOperators(&factory_);
    sam_ = std::make_unique<runtime::Sam>(&sim_, &srm_, &factory_,
                                          sam_config);
  }

  sim::Simulation& sim() { return sim_; }
  runtime::Srm& srm() { return srm_; }
  runtime::Sam& sam() { return *sam_; }
  runtime::OperatorFactory& factory() { return factory_; }

  /// Builds the harness's OrcaService, wired per `sink_mode`. Tests that
  /// assert on control-plane behaviour run the same body under both
  /// modes: the remote plane's whole contract is that they can't tell
  /// the difference.
  orca::OrcaService& InitService(orca::OrcaService::Config config = {},
                                 SinkMode sink_mode = SinkMode::kInProcess) {
    if (sink_mode == SinkMode::kRemote) {
      net::RemoteBridge::Options bridge_options;
      bridge_options.metric_pull_period = config.metric_pull_period;
      bridge_ = std::make_unique<net::RemoteBridge>(&sim_, &srm_,
                                                    std::move(bridge_options));
      config.failure_sink = &bridge_->sink();
      config.remote_event_plane = true;
    }
    service_ = std::make_unique<orca::OrcaService>(&sim_, sam_.get(), &srm_,
                                                   config);
    if (bridge_ != nullptr) bridge_->BindService(service_.get());
    return *service_;
  }

  orca::OrcaService& service() { return *service_; }
  /// Non-null after InitService(..., SinkMode::kRemote).
  net::RemoteBridge* bridge() { return bridge_.get(); }

  /// Registers a CallbackSink kind that appends tuples to an internal log.
  /// Returns a pointer to the log (stable for the harness lifetime).
  std::vector<topology::Tuple>* AddSinkKind(const std::string& kind) {
    auto log = std::make_shared<std::vector<topology::Tuple>>();
    logs_.push_back(log);
    factory_.RegisterOrReplace(kind, [log] {
      return std::make_unique<ops::CallbackSink>(
          [log](const topology::Tuple& tuple, runtime::OperatorContext*) {
            log->push_back(tuple);
          });
    });
    return log.get();
  }

 private:
  sim::Simulation sim_;
  runtime::Srm srm_;
  runtime::OperatorFactory factory_;
  std::unique_ptr<runtime::Sam> sam_;
  /// Bridge before service: the service's config points at its sink.
  std::unique_ptr<net::RemoteBridge> bridge_;
  std::unique_ptr<orca::OrcaService> service_;
  std::vector<std::shared_ptr<std::vector<topology::Tuple>>> logs_;
};

// --- Soak-scenario driver helpers (shared by the usecase + soak tests) ------

/// Serial-oracle options at the full scenario duration, so the
/// scenarios' strict invariants apply.
inline harness::ScenarioOptions SerialScenarioOptions(uint64_t fault_seed = 7) {
  harness::ScenarioOptions options;
  options.mode = harness::DispatchMode::kSerial;
  options.duration = harness::kScenarioDuration;
  options.fault_seed = fault_seed;
  return options;
}

/// Seeded DeterministicExecutor variant of the same run.
inline harness::ScenarioOptions DeterministicScenarioOptions(
    uint64_t schedule_seed, uint64_t fault_seed = 7) {
  harness::ScenarioOptions options = SerialScenarioOptions(fault_seed);
  options.mode = harness::DispatchMode::kDeterministic;
  options.seed = schedule_seed;
  return options;
}

/// Runs the scenario and fails the current test if its invariants or the
/// default detection→actuation SLOs do not hold; returns the run for
/// further, scenario-specific assertions.
inline harness::RunResult RunHealthyScenario(
    harness::Scenario& scenario, const harness::ScenarioOptions& options) {
  harness::RunResult result = harness::RunScenario(scenario, options);
  EXPECT_TRUE(result.verify.ok())
      << scenario.name() << " invariants: " << result.verify.ToString();
  common::Status slos =
      harness::CheckSlos(result.latency, harness::DefaultScenarioSlos());
  EXPECT_TRUE(slos.ok()) << scenario.name() << " SLOs: " << slos.ToString();
  return result;
}

/// Flattens a per-application journal into `app: entry` lines, in map
/// order — the diff-friendly form for byte-equivalence assertions.
inline std::vector<std::string> FlattenJournal(
    const std::map<std::string, std::vector<std::string>>& journal) {
  std::vector<std::string> lines;
  for (const auto& [app, entries] : journal) {
    for (const std::string& entry : entries) {
      lines.push_back(app + ": " + entry);
    }
  }
  return lines;
}

}  // namespace orcastream::testing

#endif  // ORCASTREAM_TESTS_TEST_UTIL_H_
