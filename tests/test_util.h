#ifndef ORCASTREAM_TESTS_TEST_UTIL_H_
#define ORCASTREAM_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "ops/sinks.h"
#include "ops/standard.h"
#include "runtime/failure_injector.h"
#include "runtime/sam.h"
#include "runtime/srm.h"
#include "sim/simulation.h"
#include "topology/app_builder.h"

namespace orcastream::testing {

/// Spins up a small simulated cluster (SRM + SAM + standard operators) for
/// runtime-level tests. Collected sink output is recorded per sink kind.
class ClusterHarness {
 public:
  explicit ClusterHarness(int hosts = 3,
                          runtime::Sam::Config sam_config = {},
                          runtime::Srm::Config srm_config = {})
      : srm_(&sim_, srm_config) {
    for (int i = 0; i < hosts; ++i) {
      srm_.AddHost("host" + std::to_string(i));
    }
    ops::RegisterStandardOperators(&factory_);
    sam_ = std::make_unique<runtime::Sam>(&sim_, &srm_, &factory_,
                                          sam_config);
  }

  sim::Simulation& sim() { return sim_; }
  runtime::Srm& srm() { return srm_; }
  runtime::Sam& sam() { return *sam_; }
  runtime::OperatorFactory& factory() { return factory_; }

  /// Registers a CallbackSink kind that appends tuples to an internal log.
  /// Returns a pointer to the log (stable for the harness lifetime).
  std::vector<topology::Tuple>* AddSinkKind(const std::string& kind) {
    auto log = std::make_shared<std::vector<topology::Tuple>>();
    logs_.push_back(log);
    factory_.RegisterOrReplace(kind, [log] {
      return std::make_unique<ops::CallbackSink>(
          [log](const topology::Tuple& tuple, runtime::OperatorContext*) {
            log->push_back(tuple);
          });
    });
    return log.get();
  }

 private:
  sim::Simulation sim_;
  runtime::Srm srm_;
  runtime::OperatorFactory factory_;
  std::unique_ptr<runtime::Sam> sam_;
  std::vector<std::shared_ptr<std::vector<topology::Tuple>>> logs_;
};

}  // namespace orcastream::testing

#endif  // ORCASTREAM_TESTS_TEST_UTIL_H_
