#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "ops/sources.h"
#include "tests/test_util.h"

namespace orcastream::ops {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::PunctKind;
using topology::Tuple;

TEST(BeaconTest, EmitsCountTuplesThenFinalPunct) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  int final_puncts = 0;
  cluster.factory().RegisterOrReplace("PunctSink", [&final_puncts] {
    return std::make_unique<CallbackSink>(
        [](const Tuple&, runtime::OperatorContext*) {},
        [&final_puncts](PunctKind kind, runtime::OperatorContext*) {
          if (kind == PunctKind::kFinal) ++final_puncts;
        });
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 0.5)
      .Param("count", 3);
  builder.AddOperator("log", "LogSink").Input("raw");
  builder.AddOperator("punct", "PunctSink").Input("raw");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(10);
  EXPECT_EQ(log->size(), 3u);
  EXPECT_EQ(final_puncts, 1);
}

TEST(FilterTest, NumericAndStringPredicates) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  cluster.factory().RegisterOrReplace("Gen", [] {
    CallbackSource::Options options;
    options.period = 0.1;
    options.count = 10;
    options.generator = [](common::Rng*, sim::SimTime,
                           int64_t seq) -> std::optional<Tuple> {
      Tuple t;
      t.Set("n", seq).Set("label", seq % 2 == 0 ? "even" : "odd");
      return t;
    };
    return std::make_unique<CallbackSource>(options);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Gen").Output("raw");
  builder.AddOperator("flt", "Filter")
      .Input("raw")
      .Output("big")
      .Param("field", "n")
      .Param("op", ">=")
      .Param("value", "5");
  builder.AddOperator("flt2", "Filter")
      .Input("big")
      .Output("bigEven")
      .Param("field", "label")
      .Param("op", "==")
      .Param("value", "even");
  builder.AddOperator("snk", "LogSink").Input("bigEven");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(10);
  // n in {5..9} and even → 6, 8.
  ASSERT_EQ(log->size(), 2u);
  EXPECT_EQ((*log)[0].GetInt("n").value(), 6);
  EXPECT_EQ((*log)[1].GetInt("n").value(), 8);
}

TEST(FilterTest, ContainsAndDiscardMetric) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  cluster.factory().RegisterOrReplace("Gen", [] {
    CallbackSource::Options options;
    options.period = 0.1;
    options.count = 4;
    options.generator = [](common::Rng*, sim::SimTime,
                           int64_t seq) -> std::optional<Tuple> {
      Tuple t;
      t.Set("text", seq % 2 == 0 ? "iphone antenna issue" : "android");
      return t;
    };
    return std::make_unique<CallbackSource>(options);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Gen").Output("raw");
  builder.AddOperator("flt", "Filter")
      .Input("raw")
      .Output("matched")
      .Param("field", "text")
      .Param("op", "contains")
      .Param("value", "iphone")
      .Param("countDiscarded", "true");
  builder.AddOperator("snk", "LogSink").Input("matched");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(10);
  EXPECT_EQ(log->size(), 2u);
  auto pe_id = cluster.sam().FindJob(*job)->PeOfOperator("flt");
  ASSERT_TRUE(pe_id.ok());
  auto discarded =
      cluster.sam().FindPe(pe_id.value())->ReadCustomMetric("flt",
                                                            "nDiscarded");
  ASSERT_TRUE(discarded.ok());
  EXPECT_EQ(discarded.value(), 2);
}

TEST(SplitTest, RoundRobinAcrossPorts) {
  ClusterHarness cluster;
  auto* log_a = cluster.AddSinkKind("SinkA");
  auto* log_b = cluster.AddSinkKind("SinkB");
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 0.1)
      .Param("count", 6);
  builder.AddOperator("split", "Split")
      .Input("raw")
      .Output("left")
      .Output("right");
  builder.AddOperator("a", "SinkA").Input("left");
  builder.AddOperator("b", "SinkB").Input("right");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(10);
  EXPECT_EQ(log_a->size(), 3u);
  EXPECT_EQ(log_b->size(), 3u);
}

TEST(SplitTest, HashModeIsConsistentPerKey) {
  ClusterHarness cluster;
  auto* log_a = cluster.AddSinkKind("SinkA");
  auto* log_b = cluster.AddSinkKind("SinkB");
  cluster.factory().RegisterOrReplace("Gen", [] {
    CallbackSource::Options options;
    options.period = 0.1;
    options.count = 20;
    options.generator = [](common::Rng*, sim::SimTime,
                           int64_t seq) -> std::optional<Tuple> {
      Tuple t;
      t.Set("symbol", seq % 2 == 0 ? "IBM" : "AAPL");
      return t;
    };
    return std::make_unique<CallbackSource>(options);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Gen").Output("raw");
  builder.AddOperator("split", "Split")
      .Input("raw")
      .Output("left")
      .Output("right")
      .Param("mode", "hash")
      .Param("field", "symbol");
  builder.AddOperator("a", "SinkA").Input("left");
  builder.AddOperator("b", "SinkB").Input("right");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(10);
  // All tuples with the same symbol must land on the same port.
  for (auto* log : {log_a, log_b}) {
    std::set<std::string> symbols;
    for (const auto& t : *log) symbols.insert(t.GetString("symbol").value());
    EXPECT_LE(symbols.size(), 1u);
  }
  EXPECT_EQ(log_a->size() + log_b->size(), 20u);
}

TEST(MergeTest, CombinesMultipleInputs) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  AppBuilder builder("App");
  builder.AddOperator("s1", "Beacon").Output("a").Param("period", 0.3).Param(
      "count", 3);
  builder.AddOperator("s2", "Beacon").Output("b").Param("period", 0.5).Param(
      "count", 2);
  builder.AddOperator("merge", "Merge").Input({"a", "b"}).Output("out");
  builder.AddOperator("snk", "LogSink").Input("out");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(10);
  EXPECT_EQ(log->size(), 5u);
}

TEST(AggregateTest, SlidingWindowStatistics) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  cluster.factory().RegisterOrReplace("Ticks", [] {
    CallbackSource::Options options;
    options.period = 1.0;
    options.count = 0;
    options.generator = [](common::Rng*, sim::SimTime,
                           int64_t seq) -> std::optional<Tuple> {
      Tuple t;
      t.Set("symbol", "IBM").Set("price", 100.0 + static_cast<double>(seq));
      return t;
    };
    return std::make_unique<CallbackSource>(options);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Ticks").Output("ticks");
  builder.AddOperator("agg", "Aggregate")
      .Input("ticks")
      .Output("stats")
      .Param("windowSeconds", 5.0)
      .Param("outputPeriod", 10.0)
      .Param("keyField", "symbol")
      .Param("aggregates", "min:price;max:price;avg:price;stddev:price;"
                           "count:price;sum:price");
  builder.AddOperator("snk", "LogSink").Input("stats");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(10.5);
  ASSERT_EQ(log->size(), 1u);
  const Tuple& out = (*log)[0];
  EXPECT_EQ(out.GetString("symbol").value(), "IBM");
  // Ticks emitted at t=1..9 (price 100+seq) arrive at the aggregator at
  // t+latency; the t=10 tick has not arrived when the window is emitted at
  // exactly t=10. The 5 s window therefore holds arrivals at 5.001..9.001,
  // i.e. prices 104..108.
  EXPECT_EQ(out.GetDouble("min_price").value(), 104.0);
  EXPECT_EQ(out.GetDouble("max_price").value(), 108.0);
  EXPECT_EQ(out.GetInt("windowCount").value(), 5);
  EXPECT_NEAR(out.GetDouble("avg_price").value(), 106.0, 1e-9);
  EXPECT_NEAR(out.GetDouble("stddev_price").value(), std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(out.GetDouble("sum_price").value(), 530.0, 1e-9);
  EXPECT_EQ(out.GetInt("count_price").value(), 5);
}

TEST(AggregateTest, PerKeyGrouping) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  cluster.factory().RegisterOrReplace("Ticks", [] {
    CallbackSource::Options options;
    options.period = 1.0;
    options.count = 4;
    options.generator = [](common::Rng*, sim::SimTime,
                           int64_t seq) -> std::optional<Tuple> {
      Tuple t;
      t.Set("symbol", seq % 2 == 0 ? "IBM" : "AAPL")
          .Set("price", static_cast<double>(seq));
      return t;
    };
    return std::make_unique<CallbackSource>(options);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Ticks").Output("ticks");
  builder.AddOperator("agg", "Aggregate")
      .Input("ticks")
      .Output("stats")
      .Param("windowSeconds", 100.0)
      .Param("outputPeriod", 6.0)
      .Param("keyField", "symbol")
      .Param("aggregates", "count:price");
  builder.AddOperator("snk", "LogSink").Input("stats");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(6.5);
  ASSERT_EQ(log->size(), 2u);  // one output per key
  std::set<std::string> symbols;
  for (const auto& t : *log) symbols.insert(t.GetString("symbol").value());
  EXPECT_EQ(symbols, (std::set<std::string>{"AAPL", "IBM"}));
}

TEST(ThrottleTest, LimitsRate) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  AppBuilder builder("App");
  // 10 tuples arrive nearly at once; throttle passes 2 per second.
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 0.01)
      .Param("count", 10);
  builder.AddOperator("th", "Throttle")
      .Input("raw")
      .Output("paced")
      .Param("rate", 2.0);
  builder.AddOperator("snk", "LogSink").Input("paced");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(2.0);
  // ~2 per second: at t=2 about 4-5 tuples, certainly not all 10.
  EXPECT_LT(log->size(), 7u);
  cluster.sim().RunUntil(10.0);
  EXPECT_EQ(log->size(), 10u);  // nothing lost
}

TEST(FinalPunctTest, PropagatesThroughPipeline) {
  // src -> filter -> merge -> sink: the final punctuation must reach the
  // sink exactly once after traversing intermediate operators (§5.3).
  ClusterHarness cluster;
  int final_puncts = 0;
  cluster.factory().RegisterOrReplace("PunctSink", [&final_puncts] {
    return std::make_unique<CallbackSink>(
        [](const Tuple&, runtime::OperatorContext*) {},
        [&final_puncts](PunctKind kind, runtime::OperatorContext*) {
          if (kind == PunctKind::kFinal) ++final_puncts;
        });
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 0.2)
      .Param("count", 5);
  builder.AddOperator("flt", "Filter")
      .Input("raw")
      .Output("f")
      .Param("field", "seq")
      .Param("op", ">=")
      .Param("value", "0");
  builder.AddOperator("m", "Merge").Input("f").Output("out");
  builder.AddOperator("snk", "PunctSink").Input("out");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(20);
  EXPECT_EQ(final_puncts, 1);

  // The built-in final punctuation metric on the sink reads 1 — this is
  // what the §5.3 orchestrator subscribes to.
  runtime::MetricsSnapshot snapshot = cluster.srm().QueryMetrics({*job});
  int64_t punct_metric = -1;
  for (const auto& rec : snapshot.operator_metrics) {
    if (rec.operator_name == "snk" && rec.port == -1 &&
        rec.metric_name ==
            runtime::builtin_metrics::kNumFinalPunctsProcessed) {
      punct_metric = rec.value;
    }
  }
  EXPECT_EQ(punct_metric, 1);
}

TEST(FinalPunctTest, MergeWaitsForAllInputs) {
  ClusterHarness cluster;
  int final_puncts = 0;
  cluster.factory().RegisterOrReplace("PunctSink", [&final_puncts] {
    return std::make_unique<CallbackSink>(
        [](const Tuple&, runtime::OperatorContext*) {},
        [&final_puncts](PunctKind kind, runtime::OperatorContext*) {
          if (kind == PunctKind::kFinal) ++final_puncts;
        });
  });
  AppBuilder builder("App");
  builder.AddOperator("fast", "Beacon").Output("a").Param("period", 0.1).Param(
      "count", 2);
  builder.AddOperator("slow", "Beacon").Output("b").Param("period", 2.0).Param(
      "count", 2);
  builder.AddOperator("m", "Merge").Input({"a", "b"}).Output("out");
  builder.AddOperator("snk", "PunctSink").Input("out");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(1.0);
  EXPECT_EQ(final_puncts, 0);  // fast side finalized, slow still running
  cluster.sim().RunUntil(20);
  EXPECT_EQ(final_puncts, 1);  // forwarded only after both inputs closed
}

TEST(StoreSinkTest, AppendsWithTimestamps) {
  ClusterHarness cluster;
  auto store = std::make_shared<TupleStore>();
  cluster.factory().RegisterOrReplace("Store", [store] {
    return std::make_unique<StoreSink>(store);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 1.0)
      .Param("count", 5);
  builder.AddOperator("snk", "Store").Input("raw");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(20);
  ASSERT_EQ(store->size(), 5u);
  EXPECT_GT(store->records()[0].at, 0.9);
  EXPECT_EQ(store->Since(3.5).size(), 2u);
  store->Clear();
  EXPECT_EQ(store->size(), 0u);
}

}  // namespace
}  // namespace orcastream::ops
