#include <gtest/gtest.h>

#include "orca/scope_matcher.h"
#include "tests/test_util.h"

namespace orcastream::orca {
namespace {

using common::JobId;
using common::PeId;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;

/// Builds the Figure 2 application and loads it into a GraphView.
class ScopeTest : public ::testing::Test {
 protected:
  ScopeTest() : cluster_(2) {
    AppBuilder builder("Figure2");
    builder.AddOperator("op1", "Beacon").Output("src1");
    auto body = [](AppBuilder& b, const std::string& in) {
      b.AddOperator("op3", "Split").Input({in}).Output("s3");
      b.AddOperator("op6", "Merge").Input("s3").Output("out");
    };
    builder.BeginComposite("composite1", "c1a");
    body(builder, "src1");
    builder.EndComposite();
    builder.BeginComposite("composite2", "c2");
    builder.AddOperator("op7", "Split").Input({"c1a.out"}).Output("s7");
    builder.BeginComposite("composite1", "nested");
    body(builder, "c2.s7");
    builder.EndComposite();
    builder.EndComposite();
    builder.AddOperator("snk", "NullSink").Input("c2.nested.out");
    auto model = builder.Build();
    EXPECT_TRUE(model.ok()) << model.status();
    auto job = cluster_.sam().SubmitJob(*model);
    EXPECT_TRUE(job.ok()) << job.status();
    job_ = *job;
    view_.AddJob(*cluster_.sam().FindJob(job_));
  }

  OperatorMetricContext MetricContext(const std::string& op,
                                      const std::string& kind,
                                      const std::string& metric,
                                      int32_t port = -1) {
    OperatorMetricContext context;
    context.job = job_;
    context.application = "Figure2";
    context.instance_name = op;
    context.operator_kind = kind;
    context.metric = metric;
    context.metric_kind = runtime::MetricKind::kBuiltin;
    context.port = port;
    return context;
  }

  ClusterHarness cluster_;
  JobId job_;
  GraphView view_;
};

TEST_F(ScopeTest, EmptyScopeMatchesEverything) {
  OperatorMetricScope scope("all");
  EXPECT_TRUE(MatchOperatorMetric(
      scope, MetricContext("op1", "Beacon", "queueSize"), view_));
  EXPECT_TRUE(MatchOperatorMetric(
      scope, MetricContext("c1a.op3", "Split", "anything"), view_));
}

TEST_F(ScopeTest, Figure5ScopeSemantics) {
  // The paper's example: queueSize metrics of Split/Merge operators inside
  // composites of type composite1.
  OperatorMetricScope scope("opMetricScope");
  scope.AddCompositeTypeFilter("composite1");
  scope.AddOperatorTypeFilter({"Split", "Merge"});
  scope.AddOperatorMetric(BuiltinMetric::kQueueSize);

  // Direct member of composite1 instance c1a.
  EXPECT_TRUE(MatchOperatorMetric(
      scope, MetricContext("c1a.op3", "Split", "queueSize"), view_));
  // Nested composite1 inside composite2.
  EXPECT_TRUE(MatchOperatorMetric(
      scope, MetricContext("c2.nested.op6", "Merge", "queueSize"), view_));
  // Wrong metric name.
  EXPECT_FALSE(MatchOperatorMetric(
      scope, MetricContext("c1a.op3", "Split", "nTuplesProcessed"), view_));
  // Right kind, but only in composite2 (op7 is a Split in c2).
  EXPECT_FALSE(MatchOperatorMetric(
      scope, MetricContext("c2.op7", "Split", "queueSize"), view_));
  // Right composite, wrong operator type would be needed — op1 is
  // top-level Beacon.
  EXPECT_FALSE(MatchOperatorMetric(
      scope, MetricContext("op1", "Beacon", "queueSize"), view_));
}

TEST_F(ScopeTest, SameAttributeFiltersAreDisjunctive) {
  OperatorMetricScope scope("s");
  scope.AddApplicationFilter("Figure2");
  scope.AddApplicationFilter("OtherApp");
  auto context = MetricContext("op1", "Beacon", "m");
  EXPECT_TRUE(MatchOperatorMetric(scope, context, view_));
  context.application = "OtherApp";
  EXPECT_TRUE(MatchOperatorMetric(scope, context, view_));
  context.application = "ThirdApp";
  EXPECT_FALSE(MatchOperatorMetric(scope, context, view_));
}

TEST_F(ScopeTest, DifferentAttributeFiltersAreConjunctive) {
  OperatorMetricScope scope("s");
  scope.AddApplicationFilter("Figure2");
  scope.AddOperatorTypeFilter("Split");
  // Application matches but type does not.
  EXPECT_FALSE(MatchOperatorMetric(
      scope, MetricContext("op1", "Beacon", "m"), view_));
  // Both match.
  EXPECT_TRUE(MatchOperatorMetric(
      scope, MetricContext("c1a.op3", "Split", "m"), view_));
}

TEST_F(ScopeTest, CompositeInstanceFilter) {
  OperatorMetricScope scope("s");
  scope.AddCompositeInstanceFilter("c2.nested");
  EXPECT_TRUE(MatchOperatorMetric(
      scope, MetricContext("c2.nested.op3", "Split", "m"), view_));
  EXPECT_FALSE(MatchOperatorMetric(
      scope, MetricContext("c1a.op3", "Split", "m"), view_));
  // Parent composite instance also matches operators in nested children.
  OperatorMetricScope parent_scope("p");
  parent_scope.AddCompositeInstanceFilter("c2");
  EXPECT_TRUE(MatchOperatorMetric(
      parent_scope, MetricContext("c2.nested.op3", "Split", "m"), view_));
}

TEST_F(ScopeTest, OperatorNameFilter) {
  OperatorMetricScope scope("s");
  scope.AddOperatorNameFilter("c1a.op3");
  EXPECT_TRUE(MatchOperatorMetric(
      scope, MetricContext("c1a.op3", "Split", "m"), view_));
  EXPECT_FALSE(MatchOperatorMetric(
      scope, MetricContext("c2.nested.op3", "Split", "m"), view_));
}

TEST_F(ScopeTest, MetricKindFilter) {
  OperatorMetricScope scope("s");
  scope.SetMetricKindFilter(runtime::MetricKind::kCustom);
  auto context = MetricContext("op1", "Beacon", "myMetric");
  context.metric_kind = runtime::MetricKind::kBuiltin;
  EXPECT_FALSE(MatchOperatorMetric(scope, context, view_));
  context.metric_kind = runtime::MetricKind::kCustom;
  EXPECT_TRUE(MatchOperatorMetric(scope, context, view_));
}

TEST_F(ScopeTest, PortScopeSelection) {
  OperatorMetricScope op_level("op");
  OperatorMetricScope port_level("port");
  port_level.SetPortScope(OperatorMetricScope::PortScope::kPortLevel);
  OperatorMetricScope both("both");
  both.SetPortScope(OperatorMetricScope::PortScope::kBoth);

  auto op_sample = MetricContext("op1", "Beacon", "m", -1);
  auto port_sample = MetricContext("op1", "Beacon", "m", 0);
  EXPECT_TRUE(MatchOperatorMetric(op_level, op_sample, view_));
  EXPECT_FALSE(MatchOperatorMetric(op_level, port_sample, view_));
  EXPECT_FALSE(MatchOperatorMetric(port_level, op_sample, view_));
  EXPECT_TRUE(MatchOperatorMetric(port_level, port_sample, view_));
  EXPECT_TRUE(MatchOperatorMetric(both, op_sample, view_));
  EXPECT_TRUE(MatchOperatorMetric(both, port_sample, view_));
}

TEST_F(ScopeTest, PeMetricScopeFilters) {
  PeMetricScope scope("s");
  scope.AddApplicationFilter("Figure2");
  scope.AddMetricNameFilter("nTupleBytesProcessed");
  PeMetricContext context;
  context.application = "Figure2";
  context.metric = "nTupleBytesProcessed";
  context.pe = PeId(1);
  EXPECT_TRUE(MatchPeMetric(scope, context));
  context.metric = "other";
  EXPECT_FALSE(MatchPeMetric(scope, context));
  context.metric = "nTupleBytesProcessed";
  scope.AddPeFilter(PeId(2));
  EXPECT_FALSE(MatchPeMetric(scope, context));
  scope.AddPeFilter(PeId(1));
  EXPECT_TRUE(MatchPeMetric(scope, context));
}

TEST_F(ScopeTest, PeFailureScopeFilters) {
  PeFailureScope scope("failureScope");
  scope.AddApplicationFilter("Figure2");
  PeFailureContext context;
  context.job = job_;
  context.application = "Figure2";
  context.reason = "segfault";
  context.operators = {"c1a.op3"};
  EXPECT_TRUE(MatchPeFailure(scope, context, view_));
  context.application = "Other";
  EXPECT_FALSE(MatchPeFailure(scope, context, view_));
  context.application = "Figure2";

  scope.AddReasonFilter("host failure");
  EXPECT_FALSE(MatchPeFailure(scope, context, view_));
  scope.AddReasonFilter("segfault");
  EXPECT_TRUE(MatchPeFailure(scope, context, view_));

  PeFailureScope comp_scope("c");
  comp_scope.AddCompositeTypeFilter("composite1");
  EXPECT_TRUE(MatchPeFailure(comp_scope, context, view_));
  context.operators = {"op1"};  // top-level operator, no composite
  EXPECT_FALSE(MatchPeFailure(comp_scope, context, view_));
}

TEST_F(ScopeTest, JobEventScopeKinds) {
  JobEventContext context;
  context.application = "Figure2";
  JobEventScope submissions("s", JobEventScope::Kind::kSubmission);
  JobEventScope cancellations("c", JobEventScope::Kind::kCancellation);
  JobEventScope both("b");
  EXPECT_TRUE(MatchJobEvent(submissions, context, true));
  EXPECT_FALSE(MatchJobEvent(submissions, context, false));
  EXPECT_FALSE(MatchJobEvent(cancellations, context, true));
  EXPECT_TRUE(MatchJobEvent(cancellations, context, false));
  EXPECT_TRUE(MatchJobEvent(both, context, true));
  EXPECT_TRUE(MatchJobEvent(both, context, false));
  JobEventScope filtered("f");
  filtered.AddApplicationFilter("Other");
  EXPECT_FALSE(MatchJobEvent(filtered, context, true));
}

TEST_F(ScopeTest, UserEventScopeNames) {
  UserEventScope scope("u");
  UserEventContext context;
  context.name = "modelRefreshRequested";
  EXPECT_TRUE(MatchUserEvent(scope, context));  // empty filter = all
  scope.AddNameFilter("somethingElse");
  EXPECT_FALSE(MatchUserEvent(scope, context));
  scope.AddNameFilter("modelRefreshRequested");
  EXPECT_TRUE(MatchUserEvent(scope, context));
}

}  // namespace
}  // namespace orcastream::orca
