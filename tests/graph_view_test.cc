#include <gtest/gtest.h>

#include <algorithm>

#include "orca/graph_view.h"
#include "tests/test_util.h"

namespace orcastream::orca {
namespace {

using common::JobId;
using common::PeId;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;

/// A Figure 2/3-like application: two composite instances whose inner
/// operators are fused across composite boundaries via colocation tags.
ApplicationModel Figure3App() {
  AppBuilder builder("Figure2");
  builder.AddOperator("op1", "Beacon").Output("src1").Colocate("pe3");
  builder.AddOperator("op2", "Beacon").Output("src2").Colocate("pe3");
  auto body = [](AppBuilder& b, const std::string& in,
                 const std::string& tag_head, const std::string& tag_tail) {
    b.AddOperator("op3", "Split")
        .Input({in})
        .Output("s3a")
        .Output("s3b")
        .Colocate(tag_head);
    b.AddOperator("op4", "Filter").Input("s3a").Output("s4").Colocate(
        tag_tail);
    b.AddOperator("op5", "Filter").Input("s3b").Output("s5").Colocate(
        tag_tail);
    b.AddOperator("op6", "Merge").Input({"s4", "s5"}).Output("out").Colocate(
        tag_tail);
  };
  builder.BeginComposite("composite1", "c1a");
  body(builder, "src1", "pe1", "pe2");
  builder.EndComposite();
  builder.BeginComposite("composite1", "c1b");
  body(builder, "src2", "pe1", "pe2");
  builder.EndComposite();
  builder.AddOperator("snkA", "NullSink").Input("c1a.out").Colocate("pe3");
  builder.AddOperator("snkB", "NullSink").Input("c1b.out").Colocate("pe3");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

class GraphViewTest : public ::testing::Test {
 protected:
  GraphViewTest() : cluster_(2) {
    auto job = cluster_.sam().SubmitJob(Figure3App());
    EXPECT_TRUE(job.ok()) << job.status();
    job_ = *job;
    view_.AddJob(*cluster_.sam().FindJob(job_));
  }
  ClusterHarness cluster_;
  JobId job_;
  GraphView view_;
};

TEST_F(GraphViewTest, OperatorsInPeCrossesComposites) {
  // Operators from both composite instances share the "pe2" partition —
  // the Figure 3 layout where the physical graph does not reflect the
  // logical grouping.
  auto pe = view_.PeOfOperator(job_, "c1a.op4");
  ASSERT_TRUE(pe.ok());
  auto ops = view_.OperatorsInPe(pe.value());
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(ops.value(),
            (std::vector<std::string>{"c1a.op4", "c1a.op5", "c1a.op6",
                                      "c1b.op4", "c1b.op5", "c1b.op6"}));
}

TEST_F(GraphViewTest, CompositesInPeListsBothInstances) {
  auto pe = view_.PeOfOperator(job_, "c1a.op4");
  ASSERT_TRUE(pe.ok());
  auto composites = view_.CompositesInPe(pe.value());
  ASSERT_TRUE(composites.ok());
  EXPECT_EQ(composites.value(), (std::vector<std::string>{"c1a", "c1b"}));
}

TEST_F(GraphViewTest, EnclosingCompositeQueries) {
  auto comp = view_.EnclosingComposite(job_, "c1a.op3");
  ASSERT_TRUE(comp.ok());
  EXPECT_EQ(comp.value(), "c1a");
  auto top = view_.EnclosingComposite(job_, "op1");
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value(), "");
  auto chain = view_.EnclosingComposites(job_, "c1b.op6");
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain.value(), (std::vector<std::string>{"c1b"}));
}

TEST_F(GraphViewTest, PhysicalQueries) {
  auto pe = view_.PeOfOperator(job_, "op1");
  ASSERT_TRUE(pe.ok());
  auto host = view_.HostOfPe(pe.value());
  ASSERT_TRUE(host.ok());
  EXPECT_TRUE(host.value().valid());
  EXPECT_TRUE(view_.HostOfPe(PeId(12345)).status().IsNotFound());
}

TEST_F(GraphViewTest, KindQueries) {
  EXPECT_EQ(view_.OperatorKind(job_, "c1a.op3").value(), "Split");
  EXPECT_EQ(view_.CompositeKind(job_, "c1b").value(), "composite1");
  EXPECT_TRUE(view_.OperatorKind(job_, "nope").status().IsNotFound());
  EXPECT_TRUE(view_.CompositeKind(job_, "nope").status().IsNotFound());
}

TEST_F(GraphViewTest, TopologyNavigation) {
  auto down = view_.DownstreamOperators(job_, "c1a.op3");
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down.value(), (std::vector<std::string>{"c1a.op4", "c1a.op5"}));
  auto up = view_.UpstreamOperators(job_, "c1a.op6");
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(up.value(), (std::vector<std::string>{"c1a.op4", "c1a.op5"}));
  auto none = view_.DownstreamOperators(job_, "snkA");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(GraphViewTest, UnknownJobIsError) {
  EXPECT_TRUE(view_.PeOfOperator(JobId(999), "x").status().IsNotFound());
  EXPECT_TRUE(
      view_.EnclosingComposites(JobId(999), "x").status().IsNotFound());
  EXPECT_FALSE(view_.HasJob(JobId(999)));
}

TEST_F(GraphViewTest, RemoveJobForgetsEverything) {
  view_.RemoveJob(job_);
  EXPECT_FALSE(view_.HasJob(job_));
  EXPECT_TRUE(view_.PeOfOperator(job_, "op1").status().IsNotFound());
  EXPECT_TRUE(view_.jobs().empty());
}

}  // namespace
}  // namespace orcastream::orca
