// Async EventBus dispatch: per-application ordered queues behind the
// DispatchExecutor interface. The DeterministicExecutor pins the async
// semantics reproducibly (per-application delivery streams byte-identical
// to the serial bus, per-queue pacing, start-event gating); the
// ThreadPoolExecutor tests cover real concurrent delivery, lifecycle
// drains, and the churn/self-replacement soak.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "orca/dispatch_executor.h"
#include "orca/event_bus.h"
#include "orca/event_scope.h"
#include "orca/orca_service.h"
#include "orca/orchestrator.h"
#include "orca/sharded_scope_registry.h"
#include "sim/simulation.h"
#include "tests/test_util.h"
#include "topology/app_builder.h"

namespace orcastream::orca {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;

Event AppMetricEvent(const std::string& app, int64_t value,
                     std::vector<std::string> matched = {"scope"}) {
  Event event;
  event.type = Event::Type::kPeMetric;
  event.summary = "peMetric(" + app + "#" + std::to_string(value) + ")";
  event.matched = std::move(matched);
  PeMetricContext context;
  context.application = app;
  context.metric = "m";
  context.value = value;
  event.context = std::move(context);
  return event;
}

Event UserEvent(const std::string& name) {
  Event event;
  event.type = Event::Type::kUser;
  event.summary = "userEvent(" + name + ")";
  event.matched = {"scope"};
  UserEventContext context;
  context.name = name;
  event.context = std::move(context);
  return event;
}

EventBus::Config AsyncConfig(std::shared_ptr<DispatchExecutor> executor,
                             double interval = 0) {
  EventBus::Config config;
  config.dispatch_interval = interval;
  config.executor = std::move(executor);
  return config;
}

// --- Deterministic executor: ordering, equivalence, pacing, gating ----------

/// Single-threaded recorder (DeterministicExecutor runs handlers on the
/// simulation thread). Journals one actuation per metric event so the
/// equivalence suite can compare journal contents, and optionally
/// publishes a same-application child event (queued-while-handling).
class DetRecordingLogic : public Orchestrator {
 public:
  DetRecordingLogic(sim::Simulation* sim, EventBus* bus)
      : sim_(sim), bus_(bus) {}

  void HandleOrcaStart(OrcaContext&, const OrcaStartContext&) override {
    order.push_back("<start>");
  }

  void HandlePeMetricEvent(OrcaContext&, const PeMetricContext& context,
                           const std::vector<std::string>& scopes) override {
    std::string payload = context.application + "#" +
                          std::to_string(context.value) + "/" +
                          context.metric + "/" +
                          std::to_string(scopes.size());
    order.push_back(payload);
    per_app[context.application].push_back(payload);
    at[context.application].push_back(sim_->Now());
    bus_->JournalActuation("act(" + payload + ")");
    // Children exercise publish-from-handler: same application, so they
    // join the tail of the same ordered queue.
    if (publish_children && context.value % 7 == 3 && context.value < 1000) {
      bus_->Publish(AppMetricEvent(context.application,
                                   1000 + context.value));
    }
  }

  void HandleUserEvent(OrcaContext&, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    order.push_back("u:" + context.name);
    per_app["<residual>"].push_back("u:" + context.name);
    bus_->JournalActuation("act(u:" + context.name + ")");
  }

  std::vector<std::string> order;
  std::map<std::string, std::vector<std::string>> per_app;
  std::map<std::string, std::vector<sim::SimTime>> at;
  bool publish_children = false;

 private:
  sim::Simulation* sim_;
  EventBus* bus_;
};

TEST(DeterministicDispatchTest, PerApplicationOrderIsFifo) {
  sim::Simulation sim;
  auto executor = std::make_shared<DeterministicExecutor>(&sim, /*seed=*/7);
  EventBus bus(&sim, AsyncConfig(executor));
  DetRecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  for (int64_t i = 0; i < 20; ++i) {
    bus.Publish(AppMetricEvent("a", i));
    bus.Publish(AppMetricEvent("b", i));
    bus.Publish(UserEvent("u" + std::to_string(i)));
  }
  sim.Run();
  EXPECT_EQ(bus.events_delivered(), 60u);
  EXPECT_EQ(bus.queue_depth(), 0u);
  ASSERT_EQ(logic.per_app["a"].size(), 20u);
  ASSERT_EQ(logic.per_app["b"].size(), 20u);
  ASSERT_EQ(logic.per_app["<residual>"].size(), 20u);
  for (int64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(logic.per_app["a"][i],
              "a#" + std::to_string(i) + "/m/1");
    EXPECT_EQ(logic.per_app["b"][i],
              "b#" + std::to_string(i) + "/m/1");
    EXPECT_EQ(logic.per_app["<residual>"][i], "u:u" + std::to_string(i));
  }
}

TEST(DeterministicDispatchTest, SameSeedReproducesTheGlobalSchedule) {
  auto run = [](uint64_t seed) {
    sim::Simulation sim;
    auto executor = std::make_shared<DeterministicExecutor>(&sim, seed);
    EventBus bus(&sim, AsyncConfig(executor));
    DetRecordingLogic logic(&sim, &bus);
    bus.set_logic(&logic);
    for (int64_t i = 0; i < 30; ++i) {
      bus.Publish(AppMetricEvent("app" + std::to_string(i % 5), i));
    }
    sim.Run();
    return logic.order;
  };
  EXPECT_EQ(run(42), run(42));
}

/// Satellite: randomized async-vs-serial equivalence. For every seed, one
/// workload script (publishes for 10 applications + residual user events,
/// interleaved with sim drains, plus publish-from-handler children) runs
/// against the serial bus and against the async bus under the
/// DeterministicExecutor. The per-application delivery streams — order,
/// payloads, and journal contents — must be byte-identical.
struct BusRun {
  std::map<std::string, std::vector<std::string>> per_app;
  /// Per application: (summary, actuations..., committed) for every
  /// journaled transaction touching it, in delivery order.
  std::map<std::string, std::vector<std::string>> journal;
  uint64_t delivered = 0;
};

BusRun RunWorkload(uint64_t workload_seed, bool async, double interval,
                   bool interleave_drains, bool weighted = false,
                   size_t batch = 1) {
  sim::Simulation sim;
  EventBus::Config config;
  config.dispatch_interval = interval;
  config.max_batch_per_step = batch;
  std::shared_ptr<DeterministicExecutor> executor;
  if (async) {
    executor = std::make_shared<DeterministicExecutor>(&sim, workload_seed,
                                                       weighted);
    config.executor = executor;
  }
  EventBus bus(&sim, config);
  DetRecordingLogic logic(&sim, &bus);
  logic.publish_children = true;
  bus.set_logic(&logic);

  common::Rng rng(workload_seed);
  std::vector<int64_t> next_value(10, 0);
  for (int step = 0; step < 200; ++step) {
    int64_t pick = rng.UniformInt(0, 11);
    if (pick < 10) {
      std::string app = "app" + std::to_string(pick);
      bus.Publish(AppMetricEvent(app, next_value[pick]++));
    } else if (pick == 10) {
      bus.Publish(UserEvent("u" + std::to_string(step)));
    } else if (interleave_drains) {
      // Runs both buses to quiescence (interval 0), so the script stays
      // aligned between the serial and async runs.
      sim.RunFor(1.0);
    }
  }
  sim.Run();

  BusRun result;
  result.per_app = logic.per_app;
  result.delivered = bus.events_delivered();
  auto app_of = [](const std::string& summary) -> std::string {
    if (summary.rfind("userEvent(", 0) == 0) return "<residual>";
    size_t open = summary.find('(');
    size_t hash = summary.find('#');
    if (open == std::string::npos || hash == std::string::npos) return "";
    return summary.substr(open + 1, hash - open - 1);
  };
  for (const TransactionLog::Record* record : bus.transactions().records()) {
    std::string entry = record->event_summary;
    for (const std::string& actuation : record->actuations) {
      entry += "|" + actuation;
    }
    entry += record->state == TransactionLog::State::kCommitted
                 ? "|committed"
                 : "|uncommitted";
    result.journal[app_of(record->event_summary)].push_back(entry);
  }
  return result;
}

TEST(DeterministicDispatchTest, AsyncMatchesSerialPerApplicationManySeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    BusRun serial = RunWorkload(seed, /*async=*/false, /*interval=*/0,
                                /*interleave_drains=*/true);
    BusRun async = RunWorkload(seed, /*async=*/true, /*interval=*/0,
                               /*interleave_drains=*/true);
    EXPECT_EQ(serial.delivered, async.delivered) << "seed " << seed;
    EXPECT_EQ(serial.per_app, async.per_app) << "seed " << seed;
    EXPECT_EQ(serial.journal, async.journal) << "seed " << seed;
  }
}

TEST(DeterministicDispatchTest, AsyncMatchesSerialUnderPacing) {
  // With pacing the global schedules differ by design (per-queue vs
  // global intervals), but the per-application streams and journals must
  // still match. Everything is published up front so both runs see the
  // same queue contents.
  for (uint64_t seed = 21; seed <= 28; ++seed) {
    BusRun serial = RunWorkload(seed, /*async=*/false, /*interval=*/0.25,
                                /*interleave_drains=*/false);
    BusRun async = RunWorkload(seed, /*async=*/true, /*interval=*/0.25,
                               /*interleave_drains=*/false);
    EXPECT_EQ(serial.delivered, async.delivered) << "seed " << seed;
    EXPECT_EQ(serial.per_app, async.per_app) << "seed " << seed;
    EXPECT_EQ(serial.journal, async.journal) << "seed " << seed;
  }
}

/// Satellite: the weighted seeded mode explores backlog-biased schedules
/// (the DeterministicExecutor mirror of the pool's weight heap) — the
/// global interleaving changes, but per-application streams and journals
/// must stay byte-identical to the serial oracle.
TEST(DeterministicDispatchTest, WeightedAsyncMatchesSerialManySeeds) {
  for (uint64_t seed = 29; seed <= 36; ++seed) {
    BusRun serial = RunWorkload(seed, /*async=*/false, /*interval=*/0,
                                /*interleave_drains=*/true);
    BusRun weighted = RunWorkload(seed, /*async=*/true, /*interval=*/0,
                                  /*interleave_drains=*/true,
                                  /*weighted=*/true);
    EXPECT_EQ(serial.delivered, weighted.delivered) << "seed " << seed;
    EXPECT_EQ(serial.per_app, weighted.per_app) << "seed " << seed;
    EXPECT_EQ(serial.journal, weighted.journal) << "seed " << seed;
  }
}

/// Satellite: delivery batching (max_batch_per_step > 1) drains runs of
/// same-application events per executor hop — again a global-schedule
/// change only; per-application semantics are untouched. Weighted and
/// unweighted, with and without pacing (pacing caps the batch at 1 by
/// construction, so that combination is the no-op regression case).
TEST(DeterministicDispatchTest, BatchedAsyncMatchesSerialManySeeds) {
  for (uint64_t seed = 37; seed <= 44; ++seed) {
    BusRun serial = RunWorkload(seed, /*async=*/false, /*interval=*/0,
                                /*interleave_drains=*/true);
    BusRun batched = RunWorkload(seed, /*async=*/true, /*interval=*/0,
                                 /*interleave_drains=*/true,
                                 /*weighted=*/(seed % 2 == 0), /*batch=*/4);
    EXPECT_EQ(serial.delivered, batched.delivered) << "seed " << seed;
    EXPECT_EQ(serial.per_app, batched.per_app) << "seed " << seed;
    EXPECT_EQ(serial.journal, batched.journal) << "seed " << seed;
  }
  for (uint64_t seed = 45; seed <= 48; ++seed) {
    BusRun serial = RunWorkload(seed, /*async=*/false, /*interval=*/0.25,
                                /*interleave_drains=*/false);
    BusRun batched = RunWorkload(seed, /*async=*/true, /*interval=*/0.25,
                                 /*interleave_drains=*/false,
                                 /*weighted=*/true, /*batch=*/8);
    EXPECT_EQ(serial.delivered, batched.delivered) << "seed " << seed;
    EXPECT_EQ(serial.per_app, batched.per_app) << "seed " << seed;
    EXPECT_EQ(serial.journal, batched.journal) << "seed " << seed;
  }
}

TEST(DeterministicDispatchTest, WeightedSameSeedReproducesTheSchedule) {
  auto run = [](uint64_t seed) {
    sim::Simulation sim;
    auto executor = std::make_shared<DeterministicExecutor>(&sim, seed,
                                                            /*weighted=*/true);
    EventBus bus(&sim, AsyncConfig(executor));
    DetRecordingLogic logic(&sim, &bus);
    bus.set_logic(&logic);
    for (int64_t i = 0; i < 30; ++i) {
      // Skewed: app0 holds most of the backlog, so weights actually
      // differ between queues and the weighted pick matters.
      bus.Publish(AppMetricEvent("app" + std::to_string(i % 5 == 0 ? 1 : 0),
                                 i));
    }
    sim.Run();
    return logic.order;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_TRUE(std::make_shared<DeterministicExecutor>(nullptr, 1, true)
                  ->weighted());
}

/// Satellite: dispatch_interval pacing holds independently per
/// application queue, including the cross-drain rule (PR 2's fix) —
/// a queue that drained still owes the remainder of ITS interval, while
/// other queues' pacing clocks are untouched.
TEST(DeterministicDispatchTest, PacingIsPerApplicationQueue) {
  sim::Simulation sim;
  auto executor = std::make_shared<DeterministicExecutor>(&sim, /*seed=*/3);
  EventBus bus(&sim, AsyncConfig(executor, /*interval=*/0.5));
  DetRecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  for (int64_t i = 0; i < 3; ++i) bus.Publish(AppMetricEvent("a", i));
  for (int64_t i = 0; i < 2; ++i) bus.Publish(AppMetricEvent("b", i));
  sim.RunUntil(3);
  // Both queues pace from their own first delivery at t=0 — concurrently,
  // not interleaved into one global 0.5 s cadence.
  EXPECT_EQ(logic.at["a"],
            (std::vector<sim::SimTime>{0.0, 0.5, 1.0}));
  EXPECT_EQ(logic.at["b"], (std::vector<sim::SimTime>{0.0, 0.5}));

  // Cross-drain, per queue: "a" last delivered at t=1.0; publishing at
  // t=3 (past the interval) delivers immediately...
  bus.Publish(AppMetricEvent("a", 100));
  sim.RunUntil(3.2);
  ASSERT_EQ(logic.at["a"].size(), 4u);
  EXPECT_DOUBLE_EQ(logic.at["a"][3], 3.0);
  // ...then a publish 0.2 s after that delivery still owes 0.3 s of "a"'s
  // interval, while "b" (idle since t=0.5) delivers immediately — its
  // queue's clock is independent of "a"'s.
  bus.Publish(AppMetricEvent("a", 101));
  bus.Publish(AppMetricEvent("b", 100));
  sim.RunUntil(10);
  ASSERT_EQ(logic.at["a"].size(), 5u);
  ASSERT_EQ(logic.at["b"].size(), 3u);
  EXPECT_DOUBLE_EQ(logic.at["a"][4], 3.5);
  EXPECT_DOUBLE_EQ(logic.at["b"][2], 3.2);
}

TEST(DeterministicDispatchTest, DrainPreservesPacingRetries) {
  sim::Simulation sim;
  auto executor = std::make_shared<DeterministicExecutor>(&sim, /*seed=*/13);
  EventBus bus(&sim, AsyncConfig(executor, /*interval=*/0.5));
  DetRecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  bus.Publish(AppMetricEvent("a", 0));
  sim.RunUntil(0.2);  // delivered at t=0, queue drained
  bus.Publish(AppMetricEvent("a", 1));  // still owes 0.3 s of pacing
  // Drain encounters the pacing wait; it must keep the owed retry
  // scheduled, not drop the queue (which would strand it forever since
  // the bus still considers it active).
  executor->Drain();
  EXPECT_EQ(bus.events_delivered(), 1u);
  sim.RunUntil(2);
  EXPECT_EQ(logic.at["a"], (std::vector<sim::SimTime>{0.0, 0.5}));
  bus.Publish(AppMetricEvent("a", 2));
  sim.RunUntil(5);
  ASSERT_EQ(logic.at["a"].size(), 3u);
  EXPECT_DOUBLE_EQ(logic.at["a"][2], 2.0);
}

TEST(DeterministicDispatchTest, FrontPublishedStartGatesApplicationQueues) {
  sim::Simulation sim;
  auto executor = std::make_shared<DeterministicExecutor>(&sim, /*seed=*/11);
  EventBus bus(&sim, AsyncConfig(executor));
  // Events retained while no logic is attached (§7 reliable delivery)...
  for (int64_t i = 0; i < 5; ++i) {
    bus.Publish(AppMetricEvent("a", i));
    bus.Publish(AppMetricEvent("b", i));
  }
  // ...must not race ahead of the replacement's front-published start
  // event, even though they sit in different application queues.
  Event start;
  start.type = Event::Type::kOrcaStart;
  start.summary = "orcaStart";
  start.context = OrcaStartContext{};
  bus.PublishFront(std::move(start));
  DetRecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  sim.Run();
  ASSERT_EQ(logic.order.size(), 11u);
  EXPECT_EQ(logic.order.front(), "<start>");
  EXPECT_EQ(logic.per_app["a"].size(), 5u);
  EXPECT_EQ(logic.per_app["b"].size(), 5u);
}

// --- Service-level async dispatch (DeterministicExecutor) -------------------

class ScopedOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    orca.RegisterEventScope(UserEventScope("user"));
    OperatorMetricScope metrics("metrics");
    orca.RegisterEventScope(metrics);
    start_order = next_index++;
    ++starts;
  }
  void HandleUserEvent(OrcaContext&, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    delivered.push_back("u:" + context.name);
    ++next_index;
  }
  void HandleOperatorMetricEvent(OrcaContext&,
                                 const OperatorMetricContext& context,
                                 const std::vector<std::string>&) override {
    delivered.push_back("m:" + context.instance_name + "." + context.metric);
    ++next_index;
  }
  int starts = 0;
  int start_order = -1;
  int next_index = 0;
  std::vector<std::string> delivered;
};

TEST(AsyncServiceTest, ReplaceLogicStartPrecedesSurvivingAppQueueEvents) {
  ClusterHarness cluster(2);
  auto executor =
      std::make_shared<DeterministicExecutor>(&cluster.sim(), /*seed=*/5);
  OrcaService::Config config;
  config.dispatch_executor = executor;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);
  ASSERT_TRUE(service.Load(std::make_unique<ScopedOrca>()).ok());
  cluster.sim().RunUntil(1);

  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon").Output("s").Param("period", 0.5);
  builder.AddOperator("f", "Filter")
      .Input("s")
      .Output("o")
      .Param("field", "seq")
      .Param("op", ">=")
      .Param("value", "0");
  AppConfig app_config;
  app_config.id = "app";
  app_config.application_name = "App";
  ASSERT_TRUE(
      service.RegisterApplication(app_config, *builder.Build()).ok());
  ASSERT_TRUE(service.SubmitApplication("app").ok());
  cluster.sim().RunFor(10);  // accumulate metrics in SRM

  // Queue application-keyed metric events plus residual user events
  // without running the simulator, then replace the logic: the
  // replacement's fresh start must precede every surviving event even
  // though they sit in several queues.
  service.PullMetricsNow();
  service.InjectUserEvent("pending");
  ASSERT_GE(service.queue_depth(), 2u);
  auto replacement_holder = std::make_unique<ScopedOrca>();
  ScopedOrca* replacement = replacement_holder.get();
  ASSERT_TRUE(service.ReplaceLogic(std::move(replacement_holder)).ok());
  cluster.sim().RunFor(5);

  EXPECT_EQ(replacement->starts, 1);
  EXPECT_EQ(replacement->start_order, 0);  // before every survivor
  EXPECT_FALSE(replacement->delivered.empty());
  EXPECT_EQ(service.queue_depth(), 0u);
}

TEST(AsyncServiceTest, ShutdownToLoadRedeliversQueuedEventsDeterministic) {
  ClusterHarness cluster(2);
  auto executor =
      std::make_shared<DeterministicExecutor>(&cluster.sim(), /*seed=*/9);
  OrcaService::Config config;
  config.dispatch_executor = executor;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);
  ASSERT_TRUE(service.Load(std::make_unique<ScopedOrca>()).ok());
  cluster.sim().RunUntil(1);
  service.InjectUserEvent("pending1");
  service.InjectUserEvent("pending2");
  ASSERT_GE(service.queue_depth(), 2u);

  service.Shutdown();
  EXPECT_FALSE(service.loaded());
  EXPECT_EQ(service.queue_depth(), 2u);
  cluster.sim().RunFor(1);
  EXPECT_EQ(service.queue_depth(), 2u);  // retained, not delivered

  auto second_holder = std::make_unique<ScopedOrca>();
  ScopedOrca* second = second_holder.get();
  ASSERT_TRUE(service.Load(std::move(second_holder)).ok());
  cluster.sim().RunFor(1);
  EXPECT_EQ(second->starts, 1);
  EXPECT_EQ(second->start_order, 0);
  EXPECT_EQ(second->delivered,
            (std::vector<std::string>{"u:pending1", "u:pending2"}));
  EXPECT_EQ(service.queue_depth(), 0u);
}

// --- ThreadPoolExecutor: real concurrency ----------------------------------

/// Thread-safe recorder for worker-pool deliveries: per-application FIFO
/// asserted via strictly-increasing values.
class PoolRecordingLogic : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext&, const OrcaStartContext&) override {}
  void HandlePeMetricEvent(OrcaContext&, const PeMetricContext& context,
                           const std::vector<std::string>&) override {
    common::MutexLock lock(mu);
    std::vector<int64_t>& values = per_app[context.application];
    if (!values.empty()) {
      EXPECT_LT(values.back(), context.value)
          << "per-application FIFO violated for " << context.application;
    }
    values.push_back(context.value);
  }

  common::Mutex mu;
  std::map<std::string, std::vector<int64_t>> per_app;
};

TEST(ThreadPoolDispatchTest, DeliversEveryEventPerApplicationFifo) {
  sim::Simulation sim;
  auto pool = std::make_shared<ThreadPoolExecutor>(4);
  EventBus bus(&sim, AsyncConfig(pool));
  PoolRecordingLogic logic;
  bus.set_logic(&logic);
  constexpr int kApps = 8;
  constexpr int64_t kPerApp = 250;
  for (int64_t value = 0; value < kPerApp; ++value) {
    for (int app = 0; app < kApps; ++app) {
      bus.Publish(AppMetricEvent("app" + std::to_string(app), value));
    }
  }
  pool->Drain();
  EXPECT_EQ(bus.events_delivered(), kApps * kPerApp);
  EXPECT_EQ(bus.queue_depth(), 0u);
  EXPECT_EQ(bus.transactions().committed_count(),
            static_cast<int64_t>(kApps * kPerApp));
  common::MutexLock lock(logic.mu);
  ASSERT_EQ(logic.per_app.size(), static_cast<size_t>(kApps));
  for (const auto& [app, values] : logic.per_app) {
    EXPECT_EQ(values.size(), static_cast<size_t>(kPerApp)) << app;
  }
}

/// Tentpole (b)+(c) under real concurrency: weighted queue picks and
/// multi-event batch drains on the worker pool, under Zipf-flavored skew
/// (one hot application, many cold ones). Per-application FIFO must
/// survive, nothing may starve, and the queue-stats surface must add up.
/// The TSan CI job runs this to race-check the weigher (called under the
/// executor lock, calling back into the bus lock) and the batch loop.
TEST(ThreadPoolDispatchTest, WeightedBatchedSkewedLoadStaysFifo) {
  sim::Simulation sim;
  auto pool = std::make_shared<ThreadPoolExecutor>(4);
  EventBus::Config config;
  config.executor = pool;
  config.max_batch_per_step = 16;
  config.weighted_dispatch = true;
  EventBus bus(&sim, config);
  PoolRecordingLogic logic;
  bus.set_logic(&logic);

  constexpr int kColdApps = 12;
  constexpr int64_t kHotEvents = 3000;
  constexpr int64_t kPerCold = 100;
  std::vector<int64_t> cold_next(kColdApps, 0);
  int64_t hot_next = 0;
  common::Rng rng(17);
  // Interleaved skewed publish stream: ~70% of traffic hits "hot".
  while (hot_next < kHotEvents) {
    if (rng.Bernoulli(0.7)) {
      bus.Publish(AppMetricEvent("hot", hot_next++));
    } else {
      int app = static_cast<int>(rng.UniformInt(0, kColdApps - 1));
      if (cold_next[app] < kPerCold) {
        bus.Publish(AppMetricEvent("cold" + std::to_string(app),
                                   cold_next[app]++));
      }
    }
    // Monitoring reads race the workers by design; TSan-clean required.
    if (hot_next % 256 == 0) {
      (void)bus.QueueStatsSnapshot();
      (void)bus.AppQueueDepth("hot");
      (void)bus.AppQueueBacklogAge("hot");
    }
  }
  for (int app = 0; app < kColdApps; ++app) {
    while (cold_next[app] < kPerCold) {
      bus.Publish(AppMetricEvent("cold" + std::to_string(app),
                                 cold_next[app]++));
    }
  }
  pool->Drain();

  uint64_t expected = static_cast<uint64_t>(kHotEvents) +
                      static_cast<uint64_t>(kColdApps) * kPerCold;
  EXPECT_EQ(bus.events_delivered(), expected);
  EXPECT_EQ(bus.queue_depth(), 0u);
  {
    common::MutexLock lock(logic.mu);
    ASSERT_EQ(logic.per_app.size(), static_cast<size_t>(kColdApps) + 1);
    EXPECT_EQ(logic.per_app["hot"].size(),
              static_cast<size_t>(kHotEvents));
    for (int app = 0; app < kColdApps; ++app) {
      EXPECT_EQ(logic.per_app["cold" + std::to_string(app)].size(),
                static_cast<size_t>(kPerCold));
    }
  }
  // Drained queues report empty with zero backlog age; delivered counts
  // per queue add up to the total.
  auto stats = bus.QueueStatsSnapshot();
  uint64_t delivered_sum = 0;
  for (const auto& s : stats) {
    EXPECT_EQ(s.depth, 0u) << s.key;
    EXPECT_EQ(s.backlog_age, 0.0) << s.key;
    delivered_sum += s.delivered;
  }
  EXPECT_EQ(delivered_sum, expected);
  EXPECT_EQ(bus.AppQueueDepth("hot"), 0u);
}

TEST(ThreadPoolDispatchTest, StartEventKeepsSimTimeStamp) {
  sim::Simulation sim;
  sim.RunUntil(5);  // advance the simulation clock past zero
  auto pool = std::make_shared<ThreadPoolExecutor>(2);
  EventBus bus(&sim, AsyncConfig(pool));
  class StartLogic : public Orchestrator {
   public:
    void HandleOrcaStart(OrcaContext&,
                         const OrcaStartContext& context) override {
      start_at = context.at;
    }
    std::atomic<double> start_at{-1};
  } logic;
  Event start;
  start.type = Event::Type::kOrcaStart;
  start.summary = "orcaStart";
  start.context = OrcaStartContext{};
  bus.PublishFront(std::move(start));
  bus.set_logic(&logic);
  pool->Drain();
  // The wall-clock pool cannot read the sim clock at delivery time, so
  // the start timestamp is the publication-time sim clock — not seconds
  // since the pool was constructed.
  EXPECT_DOUBLE_EQ(logic.start_at.load(), 5.0);
}

/// Satellite: stress/soak — scope register/unregister churn on the
/// publishing thread, ReplaceLogic-style self-replacement from inside a
/// handler, and concurrent multi-application publishes on the worker
/// pool. ASan (and the TSan job) watch for leaks, data races, and
/// use-after-retire on the outgoing orchestrator.
struct StressState;

class StressLogic : public Orchestrator {
 public:
  explicit StressLogic(StressState* state) : state_(state) {}
  void HandleOrcaStart(OrcaContext&, const OrcaStartContext&) override {}
  void HandlePeMetricEvent(OrcaContext&, const PeMetricContext& context,
                           const std::vector<std::string>& scopes) override;

 private:
  StressState* state_;
};

struct StressState {
  EventBus* bus = nullptr;
  common::Mutex mu;
  /// Owner of the currently installed logic (the OrcaService role).
  std::unique_ptr<Orchestrator> current;
  std::map<std::string, int64_t> last_value;
  std::atomic<int64_t> total{0};
  std::atomic<int> replacements{0};
  std::atomic<bool> fifo_ok{true};

  void Record(const std::string& app, int64_t value, size_t matched) {
    common::MutexLock lock(mu);
    auto [it, inserted] = last_value.try_emplace(app, value);
    if (!inserted) {
      if (value <= it->second) fifo_ok = false;
      it->second = value;
    }
    (void)matched;
  }

  /// §7 self-replacement from inside a handler: the caller's own object
  /// is retired while its handler frame — and possibly other workers'
  /// frames — are still inside it; DisposeAfterDispatch must defer
  /// destruction until they all unwind.
  void SelfReplace(Orchestrator* self) {
    common::MutexLock lock(mu);
    if (current.get() != self) return;  // already replaced by another event
    auto next = std::make_unique<StressLogic>(this);
    bus->set_logic(next.get());
    std::unique_ptr<Orchestrator> outgoing = std::move(current);
    current = std::move(next);
    bus->DisposeAfterDispatch(std::move(outgoing));
    ++replacements;
  }
};

void StressLogic::HandlePeMetricEvent(
    OrcaContext&, const PeMetricContext& context,
    const std::vector<std::string>& scopes) {
  state_->Record(context.application, context.value, scopes.size());
  int64_t n = state_->total.fetch_add(1) + 1;
  if (n % 97 == 0) state_->SelfReplace(this);
}

TEST(ThreadPoolDispatchTest, ChurnAndSelfReplacementSoak) {
  sim::Simulation sim;
  auto pool = std::make_shared<ThreadPoolExecutor>(4);
  EventBus bus(&sim, AsyncConfig(pool));
  StressState state;
  state.bus = &bus;
  {
    auto first = std::make_unique<StressLogic>(&state);
    bus.set_logic(first.get());
    common::MutexLock lock(state.mu);
    state.current = std::move(first);
  }

  // The publishing thread owns the registry, exactly as OrcaService does
  // in production: matching happens at publish time, workers only deliver.
  ShardedScopeRegistry registry(4);
  common::Rng rng(1234);
  constexpr int kApps = 6;
  constexpr int64_t kEvents = 4000;
  std::vector<int64_t> next_value(kApps, 0);
  int64_t published = 0;
  for (int64_t i = 0; i < kEvents; ++i) {
    int app_index = static_cast<int>(rng.UniformInt(0, kApps - 1));
    std::string app = "app" + std::to_string(app_index);
    // Scope churn: every app's scope key flips between registered and
    // unregistered while deliveries run.
    std::string key = "scope-" + app;
    if (rng.Bernoulli(0.05)) {
      if (registry.Unregister(key) == 0) {
        PeMetricScope scope(key);
        scope.AddApplicationFilter(app);
        registry.Register(scope);
      }
    }
    PeMetricContext probe;
    probe.application = app;
    probe.metric = "m";
    std::vector<std::string> matched = registry.MatchedKeys(probe);
    matched.push_back("always");  // deliver even when churned away
    bus.Publish(AppMetricEvent(app, next_value[app_index]++,
                               std::move(matched)));
    ++published;
    if (i % 512 == 0) std::this_thread::yield();
  }
  pool->Drain();

  EXPECT_EQ(state.total.load(), published);
  EXPECT_EQ(bus.events_delivered(), static_cast<uint64_t>(published));
  EXPECT_TRUE(state.fifo_ok.load());
  EXPECT_GT(state.replacements.load(), 0);
  EXPECT_EQ(bus.transactions().committed_count(), published);
  EXPECT_TRUE(bus.transactions().Uncommitted().empty());
  // The final logic is destroyed by `state.current`; every retired one
  // must have been disposed by the bus without leaks (ASan checks).
  bus.set_logic(nullptr);
}

// --- Actuating handlers: async-vs-serial equivalence ------------------------

/// Satellite: the OrcaContext equivalence suite with *actuating*
/// handlers. The logic registers/unregisters scopes, restarts PEs,
/// submits and cancels applications mid-delivery — all through the
/// per-delivery context. Per-application delivery streams and
/// transaction journals must stay byte-identical between the serial bus
/// and the DeterministicExecutor across seeds (the context's immediate
/// mode is the serial oracle, preserved).
class ActuatingOrca : public Orchestrator {
 public:
  explicit ActuatingOrca(std::vector<std::string> hub_apps)
      : hub_apps_(std::move(hub_apps)) {}

  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    per_app["<residual>"].push_back("<start>");
    OperatorMetricScope ops("ops");
    ops.SetMetricKindFilter(runtime::MetricKind::kCustom);
    for (const auto& hub : hub_apps_) ops.AddApplicationFilter(hub);
    orca.RegisterEventScope(ops);
    orca.RegisterEventScope(JobEventScope("jobs"));
    orca.RegisterEventScope(UserEventScope("user"));
    orca.RegisterEventScope(PeFailureScope("fail"));
    orca.SetMetricPullPeriod(5.0);
    for (const auto& hub : hub_apps_) {
      // hub0 -> "hub0" config id (apps are named Hub<k>).
      orca.SubmitApplication("hub" + hub.substr(3));
    }
  }

  void HandleOperatorMetricEvent(
      OrcaContext& orca, const OperatorMetricContext& context,
      const std::vector<std::string>& scopes) override {
    std::string keys;
    for (const auto& key : scopes) keys += key + "+";
    Record(context.application,
           "m:" + context.instance_name + "." + context.metric + "=" +
               std::to_string(context.value) + "@" +
               std::to_string(context.epoch) + "/" + keys,
           orca);
    // Scope churn keyed off the (deterministic) metric value: toggling
    // "dyn-<app>" changes which keys later events of THIS application
    // match — divergence in registry handling shows up in the streams.
    if (context.value % 5 == 3) {
      std::string key = "dyn-" + context.application;
      if (dyn_registered_.count(key) == 0) {
        OperatorMetricScope dyn(key);
        dyn.AddApplicationFilter(context.application);
        dyn.SetMetricKindFilter(runtime::MetricKind::kCustom);
        orca.RegisterEventScope(dyn);
        dyn_registered_.insert(key);
      } else {
        orca.UnregisterEventScope(key);
        dyn_registered_.erase(key);
      }
    }
    // Journaled runtime-error path (§3): the PE is running, so the
    // restart is refused — deterministically — after being journaled.
    if (context.value % 7 == 2) orca.RestartPe(context.pe);
    // Expand/contract the child application of this hub, driven purely
    // by logic-local state so the decision is schedule-independent.
    if (context.metric == "nSeen") {
      std::string child = "child" + context.application.substr(3);
      bool& submitted = child_submitted_[child];
      if (context.epoch % 2 == 0 && !submitted) {
        orca.SubmitApplication(child);
        submitted = true;
      } else if (context.epoch % 2 == 1 && submitted) {
        orca.CancelApplication(child);
        submitted = false;
      }
    }
  }

  void HandlePeFailureEvent(OrcaContext& orca,
                            const PeFailureContext& context,
                            const std::vector<std::string>&) override {
    Record(context.application, "f:" + context.reason, orca);
    orca.RestartPe(context.pe);  // a real restart: the PE crashed
  }

  void HandleJobSubmissionEvent(OrcaContext& orca,
                                const JobEventContext& context,
                                const std::vector<std::string>&) override {
    Record(context.application, "j+:" + context.config_id, orca);
  }

  void HandleJobCancellationEvent(OrcaContext& orca,
                                  const JobEventContext& context,
                                  const std::vector<std::string>&) override {
    Record(context.application, "j-:" + context.config_id, orca);
  }

  void HandleUserEvent(OrcaContext& orca, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    Record("<residual>", "u:" + context.name, orca);
  }

  std::map<std::string, std::vector<std::string>> per_app;
  /// Per application: the delivery transactions its events ran in, in
  /// delivery order (joined with the journal after the run).
  std::map<std::string, std::vector<TransactionId>> txns;

 private:
  void Record(const std::string& app, std::string payload,
              OrcaContext& orca) {
    per_app[app].push_back(std::move(payload));
    txns[app].push_back(orca.current_transaction());
  }

  std::vector<std::string> hub_apps_;
  std::set<std::string> dyn_registered_;
  std::map<std::string, bool> child_submitted_;
};

struct ActuatingRun {
  std::map<std::string, std::vector<std::string>> per_app;
  std::map<std::string, std::vector<std::string>> journal;
  uint64_t delivered = 0;
};

ActuatingRun RunActuatingWorkload(uint64_t seed, bool async) {
  ClusterHarness cluster(4);
  cluster.factory().RegisterOrReplace("CountingSink", [] {
    return std::make_unique<ops::CallbackSink>(
        [](const topology::Tuple&, runtime::OperatorContext* ctx) {
          ctx->CreateCustomMetric("nSeen");
          ctx->AddToCustomMetric("nSeen", 1);
        });
  });
  OrcaService::Config config;
  if (async) {
    config.dispatch_executor =
        std::make_shared<DeterministicExecutor>(&cluster.sim(), seed);
  }
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);

  constexpr int kHubs = 4;
  std::vector<std::string> hub_apps;
  for (int i = 0; i < kHubs; ++i) {
    std::string hub = "Hub" + std::to_string(i);
    hub_apps.push_back(hub);
    AppBuilder builder(hub);
    builder.AddOperator("src", "Beacon").Output("raw").Param("period", 0.5);
    builder.AddOperator("snk", "CountingSink").Input("raw");
    AppConfig app_config;
    app_config.id = "hub" + std::to_string(i);
    app_config.application_name = hub;
    EXPECT_TRUE(
        service.RegisterApplication(app_config, *builder.Build()).ok());
    AppBuilder child_builder("Child" + std::to_string(i));
    child_builder.AddOperator("src", "Beacon")
        .Output("raw")
        .Param("period", 1.0);
    child_builder.AddOperator("snk", "NullSink").Input("raw");
    AppConfig child_config;
    child_config.id = "child" + std::to_string(i);
    child_config.application_name = "Child" + std::to_string(i);
    EXPECT_TRUE(
        service.RegisterApplication(child_config, *child_builder.Build())
            .ok());
  }

  auto logic_holder = std::make_unique<ActuatingOrca>(hub_apps);
  ActuatingOrca* logic = logic_holder.get();
  EXPECT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunFor(0.5);

  common::Rng rng(seed * 77 + 1);
  int kills = 0;
  for (int step = 0; step < 60; ++step) {
    int64_t pick = rng.UniformInt(0, 9);
    if (pick <= 2) {
      service.InjectUserEvent("u" + std::to_string(step));
    } else if (pick <= 4) {
      service.PullMetricsNow();
    } else if (pick == 5 && kills < 3) {
      // Crash a hub sink PE; the failure handler restarts it.
      std::string hub = "hub" + std::to_string(rng.UniformInt(0, kHubs - 1));
      auto job = service.RunningJob(hub);
      if (job.ok()) {
        auto pe = cluster.sam().FindJob(job.value())->PeOfOperator("snk");
        if (pe.ok() && cluster.sam().KillPe(pe.value(), "crash").ok()) {
          ++kills;
        }
      }
    } else {
      cluster.sim().RunFor(1.0);
    }
  }
  cluster.sim().RunFor(5.0);

  ActuatingRun result;
  result.per_app = logic->per_app;
  result.delivered = service.events_delivered();
  // Join the per-app transaction streams with the journal: summary +
  // actuations + commit state, in delivery order per application.
  for (const auto& [app, txn_list] : logic->txns) {
    for (TransactionId txn : txn_list) {
      const TransactionLog::Record* record =
          service.transactions().Find(txn);
      std::string entry = record == nullptr ? "<none>"
                                            : record->event_summary;
      if (record != nullptr) {
        for (const auto& actuation : record->actuations) {
          entry += "|" + actuation;
        }
        entry += record->state == TransactionLog::State::kCommitted
                     ? "|committed"
                     : "|uncommitted";
      }
      result.journal[app].push_back(std::move(entry));
    }
  }
  return result;
}

TEST(ActuatingDispatchTest, AsyncMatchesSerialWithActuatingHandlers) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ActuatingRun serial = RunActuatingWorkload(seed, /*async=*/false);
    ActuatingRun async = RunActuatingWorkload(seed, /*async=*/true);
    EXPECT_EQ(serial.delivered, async.delivered) << "seed " << seed;
    EXPECT_EQ(serial.per_app, async.per_app) << "seed " << seed;
    EXPECT_EQ(serial.journal, async.journal) << "seed " << seed;
    // The workload must actually exercise the actuation surface.
    bool any_restart = false;
    for (const auto& [app, entries] : serial.journal) {
      for (const auto& entry : entries) {
        if (entry.find("restartPe(") != std::string::npos) {
          any_restart = true;
        }
      }
    }
    EXPECT_TRUE(any_restart) << "seed " << seed;
    EXPECT_GE(serial.per_app.size(), 2u) << "seed " << seed;
  }
}

// --- ThreadPool: staged actuation through the OrcaContext -------------------

/// Satellite: the actuating ThreadPool soak. Worker-thread handlers
/// actuate through their (staged) OrcaContext — scope churn, application
/// submissions, pull-period changes, timers — while the simulation
/// thread concurrently applies the staged batches and pumps the
/// simulation. ASan/TSan watch the marshalling path; the guard
/// regression asserts that *direct* service calls from the worker are
/// refused with a Status instead of racing (the old Debug-only assert,
/// now a Release-mode guard).
TEST(ThreadPoolServiceTest, ActuatingHandlersStageAndApply) {
  ClusterHarness cluster(3);
  OrcaService::Config config;
  config.dispatch_threads = 4;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);
  // Delivery depends on this unowned scope, registered from the sim
  // thread up front — handler-registered scopes apply asynchronously at
  // commit, so the soak only uses them for churn, not for delivery.
  service.RegisterEventScope(UserEventScope("user"));

  constexpr int kChildren = 3;
  for (int i = 0; i < kChildren; ++i) {
    AppBuilder builder("Child" + std::to_string(i));
    builder.AddOperator("src", "Beacon").Output("raw").Param("period", 1.0);
    builder.AddOperator("snk", "NullSink").Input("raw");
    AppConfig app_config;
    app_config.id = "child" + std::to_string(i);
    app_config.application_name = "Child" + std::to_string(i);
    ASSERT_TRUE(
        service.RegisterApplication(app_config, *builder.Build()).ok());
  }

  struct SoakState {
    OrcaService* service = nullptr;
    std::atomic<int64_t> delivered{0};
    std::atomic<int> submits_staged{0};
    std::atomic<int> timers_created{0};
    std::atomic<bool> guard_failed_precondition{true};
    std::atomic<bool> staged_calls_returned_ok{true};
    std::atomic<bool> timer_ids_valid{true};
    std::atomic<bool> snapshot_reads_ok{true};
    std::atomic<double> start_now{-1};
  } state;
  state.service = &service;

  class SoakLogic : public Orchestrator {
   public:
    explicit SoakLogic(SoakState* state) : state_(state) {}
    void HandleOrcaStart(OrcaContext& orca,
                         const OrcaStartContext&) override {
      EXPECT_TRUE(orca.staged());
      // The staged clock is pinned at the Load-time publication, not at
      // service construction.
      state_->start_now = orca.Now();
    }
    void HandleUserEvent(OrcaContext& orca, const UserEventContext& context,
                         const std::vector<std::string>&) override {
      int64_t n = state_->delivered.fetch_add(1) + 1;
      // Snapshot reads: consistent, lock-free against the sim thread.
      if (orca.Now() < 0) state_->snapshot_reads_ok = false;
      (void)orca.graph().jobs();
      (void)orca.IsRunning("child0");
      (void)orca.metric_pull_period();
      // Staged actuations, exercised across the surface.
      if (n <= 3) {
        std::string child = "child" + std::to_string(n - 1);
        if (!orca.SubmitApplication(child).ok()) {
          state_->staged_calls_returned_ok = false;
        }
        ++state_->submits_staged;
      }
      if (n % 50 == 0) {
        OperatorMetricScope churn("churn-" + std::to_string(n));
        orca.RegisterEventScope(churn);
        orca.UnregisterEventScope("churn-" + std::to_string(n));
        orca.SetMetricPullPeriod(7.0 + static_cast<double>(n % 3));
      }
      if (n % 97 == 0) {
        common::TimerId id =
            orca.CreateTimer(1e9, "soak-" + std::to_string(n));
        if (id.value() == 0) state_->timer_ids_valid = false;
        ++state_->timers_created;
        orca.CancelTimer(id);
      }
      if (context.name == "probe-guard") {
        // Regression (old CheckNotInWorkerHandler assert): a residual
        // DIRECT service call from a worker-thread handler must be
        // refused with FailedPrecondition in every build mode — and must
        // not take effect.
        common::Status direct = state_->service->SubmitApplication("child0");
        if (!direct.IsFailedPrecondition()) {
          state_->guard_failed_precondition = false;
        }
        if (state_->service->CreateTimer(1.0, "never").value() != 0) {
          state_->timer_ids_valid = false;
        }
      }
    }

   private:
    SoakState* state_;
  };

  cluster.sim().RunUntil(3);  // the clock must be pinned at Load, not t=0
  ASSERT_TRUE(service.Load(std::make_unique<SoakLogic>(&state)).ok());
  // Let the start event deliver before anything else publishes, so its
  // handler's pinned Now() is unambiguously the Load-time clock.
  while (service.events_delivered() < 1) std::this_thread::yield();
  EXPECT_DOUBLE_EQ(state.start_now.load(), 3.0);

  constexpr int64_t kEvents = 1500;
  for (int64_t i = 0; i < kEvents; ++i) {
    service.InjectUserEvent(i == 200 ? "probe-guard"
                                     : "evt" + std::to_string(i));
    if (i % 64 == 0) {
      // The simulation thread's run loop: marshal staged batches out of
      // the mailbox and advance the simulation (atomic introspection
      // reads race harmlessly with the workers — TSan-clean by design).
      service.ApplyStagedActuations();
      (void)service.events_delivered();
      (void)service.queue_depth();
      cluster.sim().RunFor(0.01);
    }
  }
  while (service.events_delivered() < kEvents + 1) {
    service.ApplyStagedActuations();
    std::this_thread::yield();
  }
  service.ApplyStagedActuations();
  cluster.sim().RunFor(2.0);  // complete the staged submissions' tasks
  EXPECT_EQ(service.staged_actuations_pending(), 0u);

  EXPECT_EQ(state.delivered.load(), kEvents);
  EXPECT_EQ(state.submits_staged.load(), 3);
  EXPECT_TRUE(state.staged_calls_returned_ok.load());
  EXPECT_TRUE(state.guard_failed_precondition.load());
  EXPECT_TRUE(state.timer_ids_valid.load());
  EXPECT_TRUE(state.snapshot_reads_ok.load());
  EXPECT_GT(state.timers_created.load(), 0);
  // The staged submissions went through on the simulation thread.
  for (int i = 0; i < kChildren; ++i) {
    EXPECT_TRUE(service.IsRunning("child" + std::to_string(i))) << i;
  }
  // The staged calls were journaled into their delivery transactions.
  bool journaled = false;
  for (const TransactionLog::Record* record :
       service.transactions().records()) {
    for (const auto& actuation : record->actuations) {
      if (actuation.find("submitApplication(child") != std::string::npos) {
        journaled = true;
      }
    }
  }
  EXPECT_TRUE(journaled);
  service.Shutdown();
}

/// Staged batches apply in handler call order at commit: the last call
/// in the batch wins.
TEST(ThreadPoolServiceTest, StagedActuationsApplyInCallOrder) {
  ClusterHarness cluster(2);
  OrcaService::Config config;
  config.dispatch_threads = 2;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);
  service.RegisterEventScope(UserEventScope("user"));
  class OrderLogic : public Orchestrator {
   public:
    void HandleOrcaStart(OrcaContext&, const OrcaStartContext&) override {}
    void HandleUserEvent(OrcaContext& orca, const UserEventContext&,
                         const std::vector<std::string>&) override {
      orca.SetMetricPullPeriod(3.0);
      orca.SetMetricPullPeriod(11.0);
      EXPECT_EQ(orca.staged_count(), 2u);
    }
  };
  ASSERT_TRUE(service.Load(std::make_unique<OrderLogic>()).ok());
  service.InjectUserEvent("go");
  while (service.events_delivered() < 2) std::this_thread::yield();
  EXPECT_EQ(service.ApplyStagedActuations(), 2u);
  EXPECT_EQ(service.metric_pull_period(), 11.0);
  service.Shutdown();
}

/// Outside a worker handler the guard admits everything: the same calls
/// that are refused from a worker-thread handler keep working from the
/// simulation thread of a ThreadPool-dispatch service.
TEST(ThreadPoolServiceTest, GuardOnlyRejectsWorkerHandlerEntry) {
  ClusterHarness cluster(2);
  OrcaService::Config config;
  config.dispatch_threads = 2;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);
  service.RegisterEventScope(UserEventScope("standing"));
  EXPECT_EQ(service.scopes().size(), 1u);
  common::TimerId timer = service.CreateTimer(100.0, "later");
  EXPECT_NE(timer.value(), 0);
  service.CancelTimer(timer);
  EXPECT_TRUE(
      service.SubmitApplication("nope").IsNotFound());  // not guarded away
}

TEST(ThreadPoolServiceTest, ServiceDeliversAndDrainsOnShutdown) {
  ClusterHarness cluster(2);
  OrcaService::Config config;
  config.dispatch_threads = 3;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);
  // Under the worker pool, handlers run off the simulation thread, so
  // scopes are registered up front (unowned, surviving logic turnover)
  // and the logic only touches its own state.
  service.RegisterEventScope(UserEventScope("user"));

  // Counters live outside the orchestrator: Shutdown disposes the logic
  // object once its in-flight deliveries unwind.
  struct Counts {
    std::atomic<int> starts{0};
    std::atomic<int64_t> delivered{0};
  } counts;
  class CountingLogic : public Orchestrator {
   public:
    explicit CountingLogic(Counts* counts) : counts_(counts) {}
    void HandleOrcaStart(OrcaContext&, const OrcaStartContext&) override {
      ++counts_->starts;
    }
    void HandleUserEvent(OrcaContext&, const UserEventContext&,
                         const std::vector<std::string>&) override {
      ++counts_->delivered;
    }

   private:
    Counts* counts_;
  };
  ASSERT_TRUE(service.Load(std::make_unique<CountingLogic>(&counts)).ok());
  for (int i = 0; i < 500; ++i) {
    service.InjectUserEvent("evt" + std::to_string(i));
  }
  // Let the pool make some progress (at least the start event plus a few
  // deliveries) before tearing down — Shutdown is allowed to retain
  // whatever has not been popped yet.
  while (service.events_delivered() < 10) std::this_thread::yield();
  // Shutdown detaches the logic and drains the pool: whatever was popped
  // for delivery finishes, the rest is retained for a future Load (§7).
  service.Shutdown();
  EXPECT_EQ(counts.starts.load(), 1);
  EXPECT_EQ(static_cast<uint64_t>(counts.delivered.load()) + 1,
            service.events_delivered());
  EXPECT_EQ(service.queue_depth() + service.events_delivered(), 501u);
}

}  // namespace
}  // namespace orcastream::orca
