#include <gtest/gtest.h>

#include "apps/social_app.h"
#include "apps/social_orca.h"
#include "orca/orca_service.h"
#include "tests/test_util.h"

namespace orcastream::apps {
namespace {

using orcastream::testing::ClusterHarness;

/// End-to-end §5.3 scenario (Figure 10), threshold scaled down: C2 apps
/// depend on C1 apps (auto-submission), discovered-profile metrics drive
/// C3 expansion, and C3 final punctuation drives contraction.
class SocialUseCaseTest : public ::testing::Test {
 protected:
  static constexpr int64_t kThreshold = 150;

  SocialUseCaseTest() : cluster_(6) {
    handles_ = SocialApps::Register(&cluster_.factory(), &cluster_.sim());
    service_ = std::make_unique<orca::OrcaService>(
        &cluster_.sim(), &cluster_.sam(), &cluster_.srm());

    // C1 readers.
    RegisterApp("c1_twitter", "TwitterStreamReader", true, 30, [&] {
      ProfileWorkload workload;
      workload.period = 0.05;
      workload.source = "twitter";
      return SocialApps::BuildReader("TwitterStreamReader", workload,
                                     &cluster_.factory());
    }());
    RegisterApp("c1_myspace", "MySpaceStreamReader", true, 30, [&] {
      ProfileWorkload workload;
      workload.period = 0.1;
      workload.source = "myspace";
      return SocialApps::BuildReader("MySpaceStreamReader", workload,
                                     &cluster_.factory());
    }());

    // C2 query apps with different discovery profiles.
    RegisterApp("c2_twitter", "TwitterQuery", true, 30,
                SocialApps::BuildQuery("TwitterQuery",
                                       {{"gender", 0.5}, {"location", 0.3}},
                                       &cluster_.factory(), handles_));
    RegisterApp("c2_blog", "BlogQuery", true, 30,
                SocialApps::BuildQuery("BlogQuery",
                                       {{"age", 0.4}, {"location", 0.2}},
                                       &cluster_.factory(), handles_));
    RegisterApp("c2_facebook", "FacebookQuery", true, 30,
                SocialApps::BuildQuery(
                    "FacebookQuery",
                    {{"age", 0.3}, {"gender", 0.4}, {"location", 0.3}},
                    &cluster_.factory(), handles_));

    // C3 aggregators, one per attribute, parameterized by $attribute.
    for (const auto& attr : SocialApps::Attributes()) {
      std::string app_name = "AttributeAggregator_" + attr;
      orca::AppConfig config;
      config.id = "c3_" + attr;
      config.application_name = app_name;
      config.parameters["attribute"] = attr;
      config.garbage_collectable = true;
      config.gc_timeout_seconds = 5;
      auto model = SocialApps::BuildAggregator(app_name);
      EXPECT_TRUE(model.ok()) << model.status();
      EXPECT_TRUE(service_->RegisterApplication(config, *model).ok());
    }

    SocialOrca::Config orca_config;
    orca_config.profile_threshold = kThreshold;
    auto logic = std::make_unique<SocialOrca>(orca_config);
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());
  }

  void RegisterApp(const std::string& id, const std::string& app_name,
                   bool collectable, double gc_timeout,
                   common::Result<topology::ApplicationModel> model) {
    ASSERT_TRUE(model.ok()) << model.status();
    orca::AppConfig config;
    config.id = id;
    config.application_name = app_name;
    config.garbage_collectable = collectable;
    config.gc_timeout_seconds = gc_timeout;
    ASSERT_TRUE(service_->RegisterApplication(config, *model).ok());
  }

  ClusterHarness cluster_;
  SocialApps::Handles handles_;
  std::unique_ptr<orca::OrcaService> service_;
  SocialOrca* logic_;
};

TEST_F(SocialUseCaseTest, C1AppsComeUpThroughDependencies) {
  cluster_.sim().RunUntil(2);
  for (const auto& id : {"c1_twitter", "c1_myspace", "c2_twitter", "c2_blog",
                         "c2_facebook"}) {
    EXPECT_TRUE(service_->IsRunning(id)) << id;
  }
  // No C3 yet: nothing discovered.
  for (const auto& attr : SocialApps::Attributes()) {
    EXPECT_FALSE(service_->IsRunning("c3_" + attr));
  }
}

TEST_F(SocialUseCaseTest, ProfilesFlowIntoTheStore) {
  cluster_.sim().RunUntil(60);
  EXPECT_GT(handles_.store->size(), 100u);
  // The store de-duplicates by user while the metric counts discoveries.
  int64_t aggregate = 0;
  for (const auto& attr : SocialApps::Attributes()) {
    aggregate += logic_->AggregateCount(attr);
  }
  EXPECT_GT(aggregate, 0);
}

TEST_F(SocialUseCaseTest, Figure10ExpansionAndContraction) {
  cluster_.sim().RunUntil(400);
  // Expansion: at least one C3 must have been spawned once some attribute
  // crossed the threshold.
  int expansions = 0, contractions = 0;
  for (const auto& event : logic_->events()) {
    if (event.what == "expand") ++expansions;
    if (event.what == "contract") ++contractions;
  }
  EXPECT_GT(expansions, 0);
  // Contraction: C3 apps finish (final punctuation) and get cancelled.
  EXPECT_GT(contractions, 0);
  EXPECT_LE(contractions, expansions);
  // Correlation results were produced before cancellation.
  ASSERT_GT(handles_.correlations->size(), 0u);
  // C3 results carry the segmentation fields.
  const auto& sample = handles_.correlations->records().front().tuple;
  EXPECT_TRUE(sample.Has("value"));
  EXPECT_TRUE(sample.Has("count_negValue") || sample.Has("sentiment"));
}

TEST_F(SocialUseCaseTest, ExpansionRequiresNewProfilesSinceLastLaunch) {
  cluster_.sim().RunUntil(400);
  // Between two expansions for the same attribute, the aggregate count
  // must have grown by at least the threshold.
  std::map<std::string, int> per_attr;
  for (const auto& event : logic_->events()) {
    if (event.what == "expand") per_attr[event.attribute]++;
  }
  for (const auto& [attr, launches] : per_attr) {
    EXPECT_LE(static_cast<int64_t>(launches),
              logic_->AggregateCount(attr) / kThreshold + 1)
        << attr;
  }
}

TEST_F(SocialUseCaseTest, CancellingAllC2AppsReleasesC1ViaGc) {
  cluster_.sim().RunUntil(10);
  for (const auto& id : {"c2_twitter", "c2_blog", "c2_facebook"}) {
    ASSERT_TRUE(service_->CancelApplication(id).ok()) << id;
  }
  // C1 readers become unused; they are GC'd after their 30 s timeout.
  cluster_.sim().RunUntil(15);
  EXPECT_TRUE(service_->IsRunning("c1_twitter"));
  EXPECT_TRUE(service_->IsGcPending("c1_twitter"));
  cluster_.sim().RunUntil(60);
  EXPECT_FALSE(service_->IsRunning("c1_twitter"));
  EXPECT_FALSE(service_->IsRunning("c1_myspace"));
}

}  // namespace
}  // namespace orcastream::apps
