#include <gtest/gtest.h>

#include "topology/tuple.h"

namespace orcastream::topology {
namespace {

TEST(TupleTest, SetAndGetTypedFields) {
  Tuple t;
  t.Set("count", static_cast<int64_t>(7))
      .Set("price", 3.5)
      .Set("symbol", "IBM")
      .Set("negative", true);
  EXPECT_EQ(t.GetInt("count").value(), 7);
  EXPECT_EQ(t.GetDouble("price").value(), 3.5);
  EXPECT_EQ(t.GetString("symbol").value(), "IBM");
  EXPECT_EQ(t.GetBool("negative").value(), true);
  EXPECT_EQ(t.size(), 4u);
}

TEST(TupleTest, OverwritePreservesOrder) {
  Tuple t;
  t.Set("a", 1).Set("b", 2).Set("a", 3);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.fields()[0].first, "a");
  EXPECT_EQ(t.GetInt("a").value(), 3);
}

TEST(TupleTest, MissingFieldIsNotFound) {
  Tuple t;
  EXPECT_TRUE(t.GetInt("nope").status().IsNotFound());
  EXPECT_FALSE(t.Has("nope"));
}

TEST(TupleTest, WrongTypeIsInvalidArgument) {
  Tuple t;
  t.Set("s", "text");
  EXPECT_TRUE(t.GetInt("s").status().IsInvalidArgument());
  EXPECT_TRUE(t.GetDouble("s").status().IsInvalidArgument());
  EXPECT_TRUE(t.GetBool("s").status().IsInvalidArgument());
}

TEST(TupleTest, FallbackAccessors) {
  Tuple t;
  t.Set("x", 5);
  EXPECT_EQ(t.IntOr("x", 0), 5);
  EXPECT_EQ(t.IntOr("y", -1), -1);
  EXPECT_EQ(t.DoubleOr("y", 2.5), 2.5);
  EXPECT_EQ(t.StringOr("y", "dflt"), "dflt");
  EXPECT_EQ(t.BoolOr("y", true), true);
}

TEST(TupleTest, NumericAcceptsIntAndDouble) {
  Tuple t;
  t.Set("i", 4).Set("d", 2.5).Set("s", "x");
  EXPECT_EQ(t.GetNumeric("i").value(), 4.0);
  EXPECT_EQ(t.GetNumeric("d").value(), 2.5);
  EXPECT_FALSE(t.GetNumeric("s").ok());
}

TEST(TupleTest, ByteSizeAccountsForStrings) {
  Tuple t;
  t.Set("k", "abcd");  // 1 (key) + 4 (value)
  EXPECT_EQ(t.ByteSize(), 5u);
  t.Set("n", 1);  // + 1 + 8
  EXPECT_EQ(t.ByteSize(), 14u);
}

TEST(TupleTest, ToStringRendering) {
  Tuple t;
  t.Set("a", 1).Set("b", "x").Set("c", true);
  EXPECT_EQ(t.ToString(), "{a=1, b=\"x\", c=true}");
  EXPECT_EQ(Tuple().ToString(), "{}");
}

TEST(TupleTest, Equality) {
  Tuple a, b;
  a.Set("x", 1);
  b.Set("x", 1);
  EXPECT_TRUE(a == b);
  b.Set("x", 2);
  EXPECT_FALSE(a == b);
}

TEST(ValueTest, ValueToStringVariants) {
  EXPECT_EQ(ValueToString(Value(static_cast<int64_t>(3))), "3");
  EXPECT_EQ(ValueToString(Value(1.5)), "1.5");
  EXPECT_EQ(ValueToString(Value(std::string("s"))), "\"s\"");
  EXPECT_EQ(ValueToString(Value(false)), "false");
}

}  // namespace
}  // namespace orcastream::topology
