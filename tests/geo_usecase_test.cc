// Geo-sharded trending use case (soak scenario (c) driven directly):
// three regional applications share one global-rollup dependency (§4.4
// dependency management), per-region post volume drives overflow
// submission/cancellation, and the us viral window (t=50–120) is the
// only hot phase. The rollup is garbage-collectable but must survive as
// long as any region holds the dependency.
#include <gtest/gtest.h>

#include "apps/geo_app.h"
#include "apps/geo_orca.h"
#include "harness/scenarios.h"
#include "orca/orca_service.h"
#include "runtime/failure_injector.h"
#include "tests/test_util.h"

namespace orcastream::apps {
namespace {

using orcastream::testing::ClusterHarness;

class GeoUseCaseTest : public ::testing::Test {
 protected:
  static constexpr double kViralStart = 50;
  static constexpr double kViralEnd = 120;

  GeoUseCaseTest() : cluster_(8) {
    orca::OrcaService::Config service_config;
    service_config.metric_pull_period = 5.0;
    service_ = std::make_unique<orca::OrcaService>(
        &cluster_.sim(), &cluster_.sam(), &cluster_.srm(), service_config);

    GeoTrendOrca::Config orca_config;
    orca_config.hot_threshold = 80;
    orca_config.cool_threshold = 50;
    for (const char* region_name : {"us", "eu", "ap"}) {
      const std::string region = region_name;
      GeoPostWorkload workload;
      workload.region = region;
      if (region == "us") {
        workload.viral_start = kViralStart;
        workload.viral_end = kViralEnd;
      }
      RegisterApp("GeoTrend_" + region, "geo_" + region, workload);
      GeoPostWorkload overflow_workload;
      overflow_workload.region = region + "_overflow";
      RegisterApp("GeoTrend_" + region + "_overflow",
                  "geo_" + region + "_overflow", overflow_workload);
      orca_config.regions.push_back({"geo_" + region,
                                     "geo_" + region + "_overflow",
                                     "GeoTrend_" + region});
    }
    GeoPostWorkload global_workload;
    global_workload.region = "global";
    RegisterApp("GeoTrend_global", "geo_global", global_workload,
                /*collectable=*/true);

    auto logic = std::make_unique<GeoTrendOrca>(orca_config);
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());
  }

  void RegisterApp(const std::string& app_name, const std::string& id,
                   const GeoPostWorkload& workload, bool collectable = false) {
    GeoApp::Register(&cluster_.factory(), app_name, workload);
    auto model = GeoApp::Build(app_name);
    EXPECT_TRUE(model.ok()) << model.status();
    orca::AppConfig config;
    config.id = id;
    config.application_name = app_name;
    if (collectable) {
      config.garbage_collectable = true;
      config.gc_timeout_seconds = 10.0;
    }
    EXPECT_TRUE(service_->RegisterApplication(config, *model).ok());
  }

  common::PeId MonitorPe(const std::string& id) {
    auto job = service_->RunningJob(id);
    EXPECT_TRUE(job.ok());
    auto pe =
        cluster_.sam().FindJob(job.value())->PeOfOperator(GeoApp::kMonitorName);
    EXPECT_TRUE(pe.ok());
    return pe.ValueOr(common::PeId());
  }

  ClusterHarness cluster_;
  std::unique_ptr<orca::OrcaService> service_;
  GeoTrendOrca* logic_;
};

TEST_F(GeoUseCaseTest, DependencyBringsUpTheSharedRollupWithRegions) {
  cluster_.sim().RunUntil(10);
  // Submitting any region auto-submits the rollup it depends on first.
  EXPECT_TRUE(service_->IsRunning("geo_global"));
  for (const char* id : {"geo_us", "geo_eu", "geo_ap"}) {
    EXPECT_TRUE(service_->IsRunning(id)) << id;
  }
  // No region is hot yet: baseline duty keeps deltas under the threshold.
  EXPECT_TRUE(logic_->overflow_events().empty());
}

TEST_F(GeoUseCaseTest, ViralWindowSubmitsOverflowOnlyForTheHotRegion) {
  cluster_.sim().RunUntil(kViralStart + 50);
  EXPECT_TRUE(logic_->overflow_active("geo_us"));
  EXPECT_TRUE(service_->IsRunning("geo_us_overflow"));
  EXPECT_FALSE(service_->IsRunning("geo_eu_overflow"));
  EXPECT_FALSE(service_->IsRunning("geo_ap_overflow"));

  std::vector<GeoTrendOrca::OverflowEvent> events = logic_->overflow_events();
  ASSERT_FALSE(events.empty());
  for (const auto& event : events) {
    EXPECT_EQ(event.region, "geo_us");
  }
  // The first full in-window pull round observes the volume spike.
  EXPECT_EQ(events[0].action, "submit");
  EXPECT_GE(events[0].at, kViralStart);
  EXPECT_LE(events[0].at, kViralStart + 15);
  EXPECT_GE(events[0].delta, 80);
}

TEST_F(GeoUseCaseTest, WindowEndCancelsOverflowAndKeepsTheRollup) {
  cluster_.sim().RunUntil(180);
  EXPECT_FALSE(logic_->overflow_active("geo_us"));
  EXPECT_FALSE(service_->IsRunning("geo_us_overflow"));

  std::vector<GeoTrendOrca::OverflowEvent> events = logic_->overflow_events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events.back().action, "cancel");
  EXPECT_GE(events.back().at, kViralEnd);
  EXPECT_LE(events.back().delta, 50);

  // The regions still depend on the rollup: collectable or not, it must
  // not have been garbage-collected while in use.
  EXPECT_TRUE(service_->IsRunning("geo_global"));
  for (const char* id : {"geo_us", "geo_eu", "geo_ap"}) {
    EXPECT_TRUE(service_->IsRunning(id)) << id;
  }
}

TEST_F(GeoUseCaseTest, RegionFailureRestartsWithoutOverflowChurn) {
  runtime::FailureInjector injector(&cluster_.sim(), &cluster_.sam());
  cluster_.sim().RunUntil(29);
  common::PeId crashed = MonitorPe("geo_eu");
  injector.KillPeAt(30, crashed, "eu monitor crash");
  cluster_.sim().RunUntil(45);
  EXPECT_EQ(logic_->restarts(), 1u);
  EXPECT_TRUE(cluster_.sam().FindPe(crashed)->running());
  // A cold-region crash must not trigger overflow management.
  EXPECT_FALSE(logic_->overflow_active("geo_eu"));
  EXPECT_FALSE(service_->IsRunning("geo_eu_overflow"));
}

TEST_F(GeoUseCaseTest, FullScenarioHealthyOnTheSerialOracle) {
  auto scenario = harness::MakeGeoTrendingScenario();
  harness::RunResult result = orcastream::testing::RunHealthyScenario(
      *scenario, orcastream::testing::SerialScenarioOptions());
  for (const char* lane : {"GeoTrend_us", "GeoTrend_eu", "GeoTrend_ap"}) {
    EXPECT_TRUE(result.journal.count(lane)) << lane;
  }
}

}  // namespace
}  // namespace orcastream::apps
