#include <gtest/gtest.h>

#include "runtime/partitioner.h"
#include "runtime/placement.h"
#include "topology/app_builder.h"

namespace orcastream::runtime {
namespace {

using common::HostId;
using common::JobId;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::HostPoolDef;

ApplicationModel FourOpChain() {
  AppBuilder builder("Chain");
  builder.AddOperator("a", "Beacon").Output("s1").Colocate("g1");
  builder.AddOperator("b", "Filter").Input("s1").Output("s2").Colocate("g1");
  builder.AddOperator("c", "Filter").Input("s2").Output("s3");
  builder.AddOperator("d", "NullSink").Input("s3").Colocate("g2");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

TEST(PartitionerTest, ByColocationFusesTaggedOperators) {
  auto partitions =
      PartitionOperators(FourOpChain(), PartitionPolicy::kByColocation);
  ASSERT_TRUE(partitions.ok());
  ASSERT_EQ(partitions->size(), 3u);
  EXPECT_EQ((*partitions)[0].operator_names,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*partitions)[1].operator_names,
            (std::vector<std::string>{"c"}));
  EXPECT_EQ((*partitions)[2].operator_names,
            (std::vector<std::string>{"d"}));
}

TEST(PartitionerTest, OnePerOperator) {
  auto partitions =
      PartitionOperators(FourOpChain(), PartitionPolicy::kOnePerOperator);
  ASSERT_TRUE(partitions.ok());
  EXPECT_EQ(partitions->size(), 4u);
}

TEST(PartitionerTest, FuseAll) {
  auto partitions =
      PartitionOperators(FourOpChain(), PartitionPolicy::kFuseAll);
  ASSERT_TRUE(partitions.ok());
  ASSERT_EQ(partitions->size(), 1u);
  EXPECT_EQ((*partitions)[0].operator_names.size(), 4u);
}

TEST(PartitionerTest, CompositeMembersCanFuseAcrossComposites) {
  // Reproduces the Figure 3 situation: operators from different composite
  // instances land in the same PE via a shared colocation tag.
  AppBuilder builder("Fig3");
  builder.BeginComposite("composite1", "ca");
  builder.AddOperator("op", "Filter").Input({"src"}).Output("oa").Colocate("pe2");
  builder.EndComposite();
  builder.BeginComposite("composite1", "cb");
  builder.AddOperator("op", "Filter").Input({"src"}).Output("ob").Colocate("pe2");
  builder.EndComposite();
  builder.AddOperator("s", "Beacon").Output("src");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok()) << model.status();
  auto partitions =
      PartitionOperators(*model, PartitionPolicy::kByColocation);
  ASSERT_TRUE(partitions.ok());
  ASSERT_EQ(partitions->size(), 2u);
  EXPECT_EQ((*partitions)[0].operator_names,
            (std::vector<std::string>{"ca.op", "cb.op"}));
}

TEST(PartitionerTest, ConflictingHostPoolsInOnePartitionRejected) {
  AppBuilder builder("Conflict");
  builder.AddHostPool("p1", {}, false);
  builder.AddHostPool("p2", {}, false);
  builder.AddOperator("a", "Beacon").Output("s").Colocate("g").Pool("p1");
  builder.AddOperator("b", "NullSink").Input("s").Colocate("g").Pool("p2");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto partitions =
      PartitionOperators(*model, PartitionPolicy::kByColocation);
  EXPECT_TRUE(partitions.status().IsInvalidArgument());
}

TEST(PartitionerTest, PartitionInheritsConstraints) {
  AppBuilder builder("Inherit");
  builder.AddHostPool("p1", {"t"}, true);
  builder.AddOperator("a", "Beacon").Output("s").Colocate("g").Pool("p1");
  builder.AddOperator("b", "NullSink").Input("s").Colocate("g").Exlocate("x");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto partitions =
      PartitionOperators(*model, PartitionPolicy::kByColocation);
  ASSERT_TRUE(partitions.ok());
  EXPECT_EQ((*partitions)[0].host_pool, "p1");
  EXPECT_EQ((*partitions)[0].host_exlocation, "x");
}

TEST(PartitionerTest, EmptyApplicationRejected) {
  ApplicationModel model("Empty");
  auto partitions =
      PartitionOperators(model, PartitionPolicy::kByColocation);
  EXPECT_TRUE(partitions.status().IsInvalidArgument());
}

// --- Placement -----------------------------------------------------------

std::vector<HostLoad> ThreeHosts() {
  std::vector<HostLoad> hosts(3);
  for (int i = 0; i < 3; ++i) {
    hosts[i].id = HostId(i);
    hosts[i].up = true;
  }
  return hosts;
}

TEST(PlacementTest, PicksLeastLoaded) {
  auto hosts = ThreeHosts();
  hosts[0].pe_count = 2;
  hosts[1].pe_count = 1;
  hosts[2].pe_count = 3;
  auto chosen = ChooseHost(hosts, nullptr, JobId(1), {});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), HostId(1));
}

TEST(PlacementTest, TieBreaksOnLowestId) {
  auto hosts = ThreeHosts();
  auto chosen = ChooseHost(hosts, nullptr, JobId(1), {});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), HostId(0));
}

TEST(PlacementTest, SkipsDownHosts) {
  auto hosts = ThreeHosts();
  hosts[0].up = false;
  auto chosen = ChooseHost(hosts, nullptr, JobId(1), {});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), HostId(1));
}

TEST(PlacementTest, HonoursTagFilter) {
  auto hosts = ThreeHosts();
  hosts[2].tags = {"gpu"};
  HostPoolDef pool;
  pool.name = "gpuPool";
  pool.tags = {"gpu"};
  auto chosen = ChooseHost(hosts, &pool, JobId(1), {});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), HostId(2));
}

TEST(PlacementTest, ExclusivePoolAvoidsSharedHosts) {
  auto hosts = ThreeHosts();
  hosts[0].jobs_using.insert(JobId(9));  // used by another job
  HostPoolDef pool;
  pool.name = "excl";
  pool.exclusive = true;
  auto chosen = ChooseHost(hosts, &pool, JobId(1), {});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), HostId(1));
}

TEST(PlacementTest, ExclusiveOwnerAllowsSameJob) {
  auto hosts = ThreeHosts();
  hosts[0].exclusive_owner = JobId(1);
  hosts[0].jobs_using.insert(JobId(1));
  hosts[1].pe_count = 0;
  // Same job may keep stacking onto its own exclusive host.
  auto chosen = ChooseHost(hosts, nullptr, JobId(1), {HostId(1), HostId(2)});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), HostId(0));
}

TEST(PlacementTest, NonExclusiveCannotTrespassExclusiveHost) {
  auto hosts = ThreeHosts();
  hosts[0].exclusive_owner = JobId(9);
  hosts[1].exclusive_owner = JobId(9);
  hosts[2].exclusive_owner = JobId(9);
  auto chosen = ChooseHost(hosts, nullptr, JobId(1), {});
  EXPECT_TRUE(chosen.status().IsFailedPrecondition());
}

TEST(PlacementTest, ExlocationExcludesHosts) {
  auto hosts = ThreeHosts();
  auto chosen = ChooseHost(hosts, nullptr, JobId(1), {HostId(0), HostId(1)});
  ASSERT_TRUE(chosen.ok());
  EXPECT_EQ(chosen.value(), HostId(2));
}

TEST(PlacementTest, NoEligibleHostIsError) {
  std::vector<HostLoad> hosts;
  auto chosen = ChooseHost(hosts, nullptr, JobId(1), {});
  EXPECT_TRUE(chosen.status().IsFailedPrecondition());
}

}  // namespace
}  // namespace orcastream::runtime
