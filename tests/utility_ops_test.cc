#include <gtest/gtest.h>

#include "ops/sources.h"
#include "tests/test_util.h"

namespace orcastream::ops {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::Tuple;

TEST(DelayTest, ShiftsTuplesInTime) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 1.0)
      .Param("count", 3);
  builder.AddOperator("delay", "Delay")
      .Input("raw")
      .Output("late")
      .Param("delay", 5.0);
  builder.AddOperator("snk", "LogSink").Input("late");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(5.5);
  EXPECT_EQ(log->size(), 0u);  // first tuple at t=1 arrives at ~6
  cluster.sim().RunUntil(8.5);
  EXPECT_EQ(log->size(), 3u);
}

TEST(DelayTest, CrashDropsHeldTuples) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 1.0)
      .Param("count", 3);
  builder.AddOperator("delay", "Delay")
      .Input("raw")
      .Output("late")
      .Param("delay", 10.0);
  builder.AddOperator("snk", "LogSink").Input("late");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(5);
  auto pe = cluster.sam().FindJob(*job)->PeOfOperator("delay");
  ASSERT_TRUE(cluster.sam().KillPe(pe.value(), "crash").ok());
  cluster.sim().RunUntil(30);
  // Held tuples died with the PE (timers are incarnation-guarded).
  EXPECT_EQ(log->size(), 0u);
}

TEST(DeDuplicateTest, DropsDuplicatesWithinExpiry) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  cluster.factory().RegisterOrReplace("Gen", [] {
    CallbackSource::Options options;
    options.period = 1.0;
    options.count = 6;
    options.generator = [](common::Rng*, sim::SimTime,
                           int64_t seq) -> std::optional<Tuple> {
      Tuple t;
      t.Set("user", seq % 2 == 0 ? "alice" : "bob");
      t.Set("seq", seq);
      return t;
    };
    return std::make_unique<CallbackSource>(options);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Gen").Output("raw");
  builder.AddOperator("dedup", "DeDuplicate")
      .Input("raw")
      .Output("unique")
      .Param("field", "user")
      .Param("expirySeconds", 100.0);
  builder.AddOperator("snk", "LogSink").Input("unique");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(10);
  // Only the first alice and the first bob pass.
  ASSERT_EQ(log->size(), 2u);
  auto pe = cluster.sam().FindJob(*job)->PeOfOperator("dedup");
  auto dropped =
      cluster.sam().FindPe(pe.value())->ReadCustomMetric("dedup",
                                                         "nDuplicatesDropped");
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 4);
}

TEST(DeDuplicateTest, KeysExpireAndPassAgain) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  cluster.factory().RegisterOrReplace("Gen", [] {
    CallbackSource::Options options;
    options.period = 2.0;
    options.count = 4;
    options.generator = [](common::Rng*, sim::SimTime,
                           int64_t seq) -> std::optional<Tuple> {
      Tuple t;
      t.Set("user", "alice").Set("seq", seq);
      return t;
    };
    return std::make_unique<CallbackSource>(options);
  });
  AppBuilder builder("App");
  builder.AddOperator("src", "Gen").Output("raw");
  builder.AddOperator("dedup", "DeDuplicate")
      .Input("raw")
      .Output("unique")
      .Param("field", "user")
      .Param("expirySeconds", 3.0);
  builder.AddOperator("snk", "LogSink").Input("unique");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(12);
  // Arrivals at 2,4,6,8 with 3 s expiry: pass at 2, drop at 4 (2 s gap),
  // pass at 6, drop at 8.
  EXPECT_EQ(log->size(), 2u);
}

TEST(SampleTest, ShedsApproximatelyTheConfiguredFraction) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 0.01)
      .Param("count", 2000);
  builder.AddOperator("shed", "Sample")
      .Input("raw")
      .Output("kept")
      .Param("rate", 0.25);
  builder.AddOperator("snk", "LogSink").Input("kept");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());
  cluster.sim().RunUntil(30);
  double fraction = static_cast<double>(log->size()) / 2000.0;
  EXPECT_NEAR(fraction, 0.25, 0.05);
  auto pe = cluster.sam().FindJob(*job)->PeOfOperator("shed");
  auto shed = cluster.sam().FindPe(pe.value())->ReadCustomMetric("shed",
                                                                 "nShed");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed.value() + static_cast<int64_t>(log->size()), 2000);
}

TEST(SampleTest, RateOneIsLossless) {
  ClusterHarness cluster;
  auto* log = cluster.AddSinkKind("LogSink");
  AppBuilder builder("App");
  builder.AddOperator("src", "Beacon")
      .Output("raw")
      .Param("period", 0.1)
      .Param("count", 50);
  builder.AddOperator("shed", "Sample").Input("raw").Output("kept");
  builder.AddOperator("snk", "LogSink").Input("kept");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster.sam().SubmitJob(*model).ok());
  cluster.sim().RunUntil(20);
  EXPECT_EQ(log->size(), 50u);
}

}  // namespace
}  // namespace orcastream::ops
