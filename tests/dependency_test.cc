#include <gtest/gtest.h>

#include "orca/dependency_graph.h"
#include "orca/orca_service.h"
#include "tests/test_util.h"

namespace orcastream::orca {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;

// --- DependencyGraph unit tests -------------------------------------------

TEST(DependencyGraphTest, AddAndQueryEdges) {
  DependencyGraph graph;
  graph.AddApp("a");
  graph.AddApp("b");
  graph.AddApp("c");
  ASSERT_TRUE(graph.AddDependency("c", "a", 10).ok());
  ASSERT_TRUE(graph.AddDependency("c", "b", 20).ok());
  ASSERT_EQ(graph.DependenciesOf("c").size(), 2u);
  EXPECT_EQ(graph.DependenciesOf("c")[0].depends_on, "a");
  EXPECT_EQ(graph.DependenciesOf("c")[1].uptime_seconds, 20);
  EXPECT_EQ(graph.DependentsOf("a"), (std::vector<std::string>{"c"}));
  EXPECT_TRUE(graph.DependentsOf("c").empty());
}

TEST(DependencyGraphTest, RejectsUnknownNodes) {
  DependencyGraph graph;
  graph.AddApp("a");
  EXPECT_TRUE(graph.AddDependency("a", "ghost", 0).IsNotFound());
  EXPECT_TRUE(graph.AddDependency("ghost", "a", 0).IsNotFound());
}

TEST(DependencyGraphTest, RejectsCycles) {
  DependencyGraph graph;
  graph.AddApp("a");
  graph.AddApp("b");
  graph.AddApp("c");
  ASSERT_TRUE(graph.AddDependency("b", "a", 0).ok());
  ASSERT_TRUE(graph.AddDependency("c", "b", 0).ok());
  EXPECT_TRUE(graph.AddDependency("a", "c", 0).IsInvalidArgument());
  EXPECT_TRUE(graph.AddDependency("a", "a", 0).IsInvalidArgument());
}

TEST(DependencyGraphTest, ClosurePrunesUnconnectedNodes) {
  // The Figure 7 shape: submitting `all` must not pull in `sn`.
  DependencyGraph graph;
  for (const char* id : {"fb", "tw", "fox", "msnbc", "sn", "all"}) {
    graph.AddApp(id);
  }
  ASSERT_TRUE(graph.AddDependency("sn", "fb", 20).ok());
  ASSERT_TRUE(graph.AddDependency("sn", "tw", 20).ok());
  ASSERT_TRUE(graph.AddDependency("all", "fb", 80).ok());
  ASSERT_TRUE(graph.AddDependency("all", "tw", 80).ok());
  ASSERT_TRUE(graph.AddDependency("all", "fox", 0).ok());
  ASSERT_TRUE(graph.AddDependency("all", "msnbc", 0).ok());
  std::vector<std::string> closure = graph.DependencyClosure("all");
  EXPECT_EQ(closure,
            (std::vector<std::string>{"fb", "tw", "fox", "msnbc", "all"}));
  EXPECT_EQ(graph.DependencyClosure("sn"),
            (std::vector<std::string>{"fb", "tw", "sn"}));
  EXPECT_EQ(graph.DependencyClosure("fb"),
            (std::vector<std::string>{"fb"}));
}

// --- Service-level dependency management (§4.4 / Figure 7) -------------------

ApplicationModel TinyApp(const std::string& name) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon").Output("raw").Param("period", 1.0);
  builder.AddOperator("snk", "NullSink").Input("raw");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

/// Minimal logic that records job events.
class PassiveOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    JobEventScope scope("jobs");
    orca.RegisterEventScope(scope);
  }
  void HandleJobSubmissionEvent(OrcaContext&, const JobEventContext& context,
                                const std::vector<std::string>&) override {
    submissions.emplace_back(context.config_id, context.at);
  }
  void HandleJobCancellationEvent(OrcaContext&,
                                  const JobEventContext& context,
                                  const std::vector<std::string>&) override {
    cancellations.emplace_back(context.config_id, context.at);
  }
  std::vector<std::pair<std::string, double>> submissions;
  std::vector<std::pair<std::string, double>> cancellations;
};

/// Figure 7 fixture: fb/tw/fox/msnbc feeding sn and all. fox is not
/// garbage-collectable; everything else is, with distinct GC timeouts.
class Figure7Test : public ::testing::Test {
 protected:
  Figure7Test() : cluster_(6) {
    service_ = std::make_unique<OrcaService>(&cluster_.sim(), &cluster_.sam(),
                                             &cluster_.srm());
    auto logic = std::make_unique<PassiveOrca>();
    logic_ = logic.get();
    EXPECT_TRUE(service_->Load(std::move(logic)).ok());

    Register("fb", true, 30);
    Register("tw", true, 30);
    Register("fox", false, 0);
    Register("msnbc", true, 60);
    Register("sn", true, 30);
    Register("all", true, 30);
    EXPECT_TRUE(service_->RegisterDependency("sn", "fb", 20).ok());
    EXPECT_TRUE(service_->RegisterDependency("sn", "tw", 20).ok());
    EXPECT_TRUE(service_->RegisterDependency("all", "fb", 80).ok());
    EXPECT_TRUE(service_->RegisterDependency("all", "tw", 80).ok());
    EXPECT_TRUE(service_->RegisterDependency("all", "fox", 0).ok());
    EXPECT_TRUE(service_->RegisterDependency("all", "msnbc", 0).ok());
  }

  void Register(const std::string& id, bool collectable, double timeout) {
    AppConfig config;
    config.id = id;
    config.application_name = id + "App";
    config.garbage_collectable = collectable;
    config.gc_timeout_seconds = timeout;
    ASSERT_TRUE(
        service_->RegisterApplication(config, TinyApp(id + "App")).ok());
  }

  double SubmittedAt(const std::string& id) {
    for (const auto& [config_id, at] : logic_->submissions) {
      if (config_id == id) return at;
    }
    return -1;
  }

  ClusterHarness cluster_;
  std::unique_ptr<OrcaService> service_;
  PassiveOrca* logic_;
};

TEST_F(Figure7Test, SubmittingAllFollowsUptimeRequirements) {
  ASSERT_TRUE(service_->SubmitApplication("all").ok());
  cluster_.sim().RunUntil(100);
  // Dependency-free apps start immediately; `all` waits 80 s on fb/tw.
  EXPECT_NEAR(SubmittedAt("fb"), 0.0, 0.01);
  EXPECT_NEAR(SubmittedAt("tw"), 0.0, 0.01);
  EXPECT_NEAR(SubmittedAt("fox"), 0.0, 0.01);
  EXPECT_NEAR(SubmittedAt("msnbc"), 0.0, 0.01);
  EXPECT_NEAR(SubmittedAt("all"), 80.0, 0.01);
  // sn is not connected to the request and must not start (§4.4's
  // snapshot prune).
  EXPECT_EQ(SubmittedAt("sn"), -1);
  EXPECT_FALSE(service_->IsRunning("sn"));
  EXPECT_EQ(logic_->submissions.size(), 5u);
}

TEST_F(Figure7Test, SnBeatsAllWhenSubmittedTogether) {
  // "If sn was to be submitted in the same round as all, sn would be
  // submitted first because its required sleeping time (20) is lower than
  // all's (80)."
  ASSERT_TRUE(service_->SubmitApplication("all").ok());
  ASSERT_TRUE(service_->SubmitApplication("sn").ok());
  cluster_.sim().RunUntil(100);
  EXPECT_NEAR(SubmittedAt("sn"), 20.0, 0.01);
  EXPECT_NEAR(SubmittedAt("all"), 80.0, 0.01);
  EXPECT_LT(SubmittedAt("sn"), SubmittedAt("all"));
}

TEST_F(Figure7Test, AlreadyRunningDependenciesAreReused) {
  ASSERT_TRUE(service_->SubmitApplication("sn").ok());
  cluster_.sim().RunUntil(30);
  ASSERT_TRUE(service_->IsRunning("sn"));
  auto fb_job = service_->RunningJob("fb");
  ASSERT_TRUE(fb_job.ok());
  // Submitting all reuses the running fb/tw instances — no duplicate jobs.
  ASSERT_TRUE(service_->SubmitApplication("all").ok());
  cluster_.sim().RunUntil(150);
  EXPECT_TRUE(service_->IsRunning("all"));
  EXPECT_EQ(service_->RunningJob("fb").value(), fb_job.value());
  // fb was submitted at ~0 and all needs 80 s of fb uptime: all becomes
  // eligible at ~80 even though requested at t=30.
  EXPECT_NEAR(SubmittedAt("all"), 80.0, 0.01);
}

TEST_F(Figure7Test, CancellingAFeederIsRefused) {
  ASSERT_TRUE(service_->SubmitApplication("sn").ok());
  cluster_.sim().RunUntil(30);
  // fb feeds the running sn: cancellation must be refused so sn does not
  // starve.
  EXPECT_TRUE(service_->CancelApplication("fb").IsFailedPrecondition());
  EXPECT_TRUE(service_->IsRunning("fb"));
}

TEST_F(Figure7Test, GarbageCollectionAfterTimeoutRespectsFlags) {
  ASSERT_TRUE(service_->SubmitApplication("all").ok());
  cluster_.sim().RunUntil(90);
  ASSERT_TRUE(service_->IsRunning("all"));
  ASSERT_TRUE(service_->CancelApplication("all").ok());
  // Feeders become unused. fb/tw (timeout 30) and msnbc (timeout 60) are
  // collectable; fox is not.
  cluster_.sim().RunUntil(95);
  EXPECT_TRUE(service_->IsRunning("fb"));  // still within timeout
  EXPECT_TRUE(service_->IsGcPending("fb"));
  EXPECT_FALSE(service_->IsGcPending("fox"));
  cluster_.sim().RunUntil(125);  // > 90 + 30
  EXPECT_FALSE(service_->IsRunning("fb"));
  EXPECT_FALSE(service_->IsRunning("tw"));
  EXPECT_TRUE(service_->IsRunning("msnbc"));  // timeout 60 not reached
  cluster_.sim().RunUntil(155);  // > 90 + 60
  EXPECT_FALSE(service_->IsRunning("msnbc"));
  EXPECT_TRUE(service_->IsRunning("fox"));  // never collected
  // Cancellation events were delivered for each collected app.
  std::set<std::string> cancelled;
  for (const auto& [id, at] : logic_->cancellations) cancelled.insert(id);
  EXPECT_EQ(cancelled,
            (std::set<std::string>{"all", "fb", "tw", "msnbc"}));
}

TEST_F(Figure7Test, ResurrectionFromTheCancellationQueue) {
  ASSERT_TRUE(service_->SubmitApplication("all").ok());
  cluster_.sim().RunUntil(90);
  ASSERT_TRUE(service_->CancelApplication("all").ok());
  cluster_.sim().RunUntil(100);
  ASSERT_TRUE(service_->IsGcPending("fb"));
  auto fb_job = service_->RunningJob("fb");
  ASSERT_TRUE(fb_job.ok());
  // Submitting sn reuses fb/tw before their GC timeout expires: they are
  // removed from the cancellation queue without a restart.
  ASSERT_TRUE(service_->SubmitApplication("sn").ok());
  cluster_.sim().RunUntil(200);
  EXPECT_TRUE(service_->IsRunning("sn"));
  EXPECT_TRUE(service_->IsRunning("fb"));
  EXPECT_FALSE(service_->IsGcPending("fb"));
  EXPECT_EQ(service_->RunningJob("fb").value(), fb_job.value());
}

TEST_F(Figure7Test, ExplicitlySubmittedAppsAreNeverCollected) {
  // Submit fb explicitly, then run sn's lifecycle: fb must survive sn's
  // cancellation even though it is collectable.
  ASSERT_TRUE(service_->SubmitApplication("fb").ok());
  ASSERT_TRUE(service_->SubmitApplication("sn").ok());
  cluster_.sim().RunUntil(30);
  ASSERT_TRUE(service_->CancelApplication("sn").ok());
  cluster_.sim().RunUntil(120);
  EXPECT_TRUE(service_->IsRunning("fb"));   // explicit
  EXPECT_FALSE(service_->IsRunning("tw"));  // collected
}

TEST_F(Figure7Test, CancelUnknownOrStoppedApp) {
  EXPECT_TRUE(service_->CancelApplication("ghost").IsNotFound());
  EXPECT_TRUE(service_->CancelApplication("fb").IsFailedPrecondition());
}

TEST_F(Figure7Test, RegisterDependencyCycleRejected) {
  EXPECT_TRUE(
      service_->RegisterDependency("fb", "all", 0).IsInvalidArgument());
}

TEST_F(Figure7Test, DuplicateRegistrationRejected) {
  AppConfig config;
  config.id = "fb";
  config.application_name = "fbApp";
  EXPECT_TRUE(service_->RegisterApplication(config, TinyApp("fbApp"))
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace orcastream::orca
