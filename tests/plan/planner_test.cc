#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "orca/scope_registry.h"
#include "plan/cardinality_stats.h"
#include "plan/plan_cache.h"
#include "plan/planner.h"
#include "plan/shape_index.h"

namespace orcastream::plan {
namespace {

TEST(CardinalityStatsTest, TracksBucketsEntriesAndLive) {
  CardinalityStats stats(2);
  stats.OnInsert(0, /*new_bucket=*/true);
  stats.OnInsert(0, /*new_bucket=*/false);
  stats.OnInsert(1, /*new_bucket=*/true);
  EXPECT_EQ(stats.attribute(0).buckets, 1u);
  EXPECT_EQ(stats.attribute(0).entries, 2u);
  EXPECT_EQ(stats.attribute(0).live, 2u);
  EXPECT_EQ(stats.attribute(0).dead(), 0u);
  EXPECT_DOUBLE_EQ(stats.attribute(0).avg_live_bucket(), 2.0);
  EXPECT_DOUBLE_EQ(stats.attribute(1).avg_live_bucket(), 1.0);

  stats.OnKill(0);
  EXPECT_EQ(stats.attribute(0).live, 1u);
  EXPECT_EQ(stats.attribute(0).dead(), 1u);
  EXPECT_DOUBLE_EQ(stats.attribute(0).avg_live_bucket(), 1.0);

  stats.Reset();
  EXPECT_EQ(stats.attribute(0).entries, 0u);
  EXPECT_EQ(stats.attribute(1).buckets, 0u);
}

TEST(PlannerTest, CompileOrdersProbesBySmallestExpectedBucket) {
  CardinalityStats stats(3);
  // attr 0: one bucket of 8; attr 1: four buckets of 1; attr 2: two
  // buckets of 2.
  for (int i = 0; i < 8; ++i) stats.OnInsert(0, i == 0);
  for (int i = 0; i < 4; ++i) stats.OnInsert(1, true);
  for (int i = 0; i < 4; ++i) stats.OnInsert(2, i % 2 == 0);

  Planner planner;
  CompiledPlan plan = planner.Compile(0b111, stats, /*epoch=*/7);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.shape, 0b111u);
  EXPECT_EQ(plan.epoch, 7u);
  EXPECT_EQ(plan.steps[0].attr, 1u);  // expected 1.0
  EXPECT_EQ(plan.steps[1].attr, 2u);  // expected 2.0
  EXPECT_EQ(plan.steps[2].attr, 0u);  // expected 8.0
}

TEST(PlannerTest, CompileIsDeterministicOnTies) {
  CardinalityStats stats(3);
  stats.OnInsert(0, true);
  stats.OnInsert(1, true);
  stats.OnInsert(2, true);
  Planner planner;
  CompiledPlan plan = planner.Compile(0b111, stats, 0);
  // Equal estimates: stable sort keeps ascending attribute order.
  EXPECT_EQ(plan.steps[0].attr, 0u);
  EXPECT_EQ(plan.steps[1].attr, 1u);
  EXPECT_EQ(plan.steps[2].attr, 2u);
}

TEST(PlannerTest, SkewGuardNeedsBothFloorAndRatio) {
  PlannerPolicy policy;
  policy.skew_guard_ratio = 8.0;
  policy.skew_guard_floor = 64;
  Planner planner(policy);
  // Small absolute buckets never trigger, however bad the ratio.
  EXPECT_FALSE(planner.SkewGuardTriggered(1.0, 63));
  // Above the floor, only a big multiple of the estimate triggers.
  EXPECT_FALSE(planner.SkewGuardTriggered(100.0, 700));
  EXPECT_TRUE(planner.SkewGuardTriggered(2.0, 64));
  EXPECT_TRUE(planner.SkewGuardTriggered(10.0, 1000));
}

TEST(PlanCacheTest, CountsCompilesAndReplans) {
  PlanCache cache;
  EXPECT_EQ(cache.Find(1), nullptr);
  cache.Put(CompiledPlan{1, 0, {}});
  cache.Put(CompiledPlan{2, 0, {}});
  EXPECT_EQ(cache.compiles(), 2u);
  EXPECT_EQ(cache.replans(), 0u);
  cache.Put(CompiledPlan{1, 1, {}});
  EXPECT_EQ(cache.replans(), 1u);
  ASSERT_NE(cache.Find(1), nullptr);
  EXPECT_EQ(cache.Find(1)->epoch, 1u);
  cache.Clear();
  EXPECT_EQ(cache.Find(1), nullptr);
  // A recompile after Clear still counts as a replan.
  cache.Put(CompiledPlan{2, 2, {}});
  EXPECT_EQ(cache.replans(), 2u);
}

AttributeValues Values(std::vector<std::string> a, std::vector<std::string> b,
                       std::vector<std::string> c) {
  return {std::move(a), std::move(b), std::move(c)};
}

TEST(ShapeIndexTest, IntersectsAcrossAttributesAndShortCircuits) {
  ShapeIndex index(3);
  index.Add(0, Values({"m1"}, {"appA"}, {}));
  index.Add(1, Values({"m1"}, {"appB"}, {}));
  index.Add(2, Values({"m2"}, {"appA"}, {}));
  index.Add(3, Values({}, {}, {}));  // wildcard
  index.Add(4, Values({"m1"}, {}, {}));
  index.Prepare();

  std::string m1 = "m1", m9 = "m9", app_a = "appA", op = "opX";
  std::vector<uint32_t> out;
  ASSERT_TRUE(index.Collect({&m1, &app_a, &op}, &out));
  // {m1,appA} shape group -> 0; wildcard -> 3; metric-only -> 4.
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 3, 4}));

  // Missing metric short-circuits every metric-filtering group; only the
  // wildcard survives.
  ASSERT_TRUE(index.Collect({&m9, &app_a, &op}, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{3}));
  EXPECT_EQ(index.stats().planned_lookups, 2u);
  EXPECT_EQ(index.stats().fallback_lookups, 0u);
}

TEST(ShapeIndexTest, KillHidesPositionsAndClearDropsGroups) {
  ShapeIndex index(3);
  index.Add(0, Values({"m1"}, {"appA"}, {}));
  index.Add(1, Values({"m1"}, {"appA"}, {}));
  index.Prepare();

  std::string m1 = "m1", app_a = "appA", op = "opX";
  std::vector<uint32_t> out;
  index.Kill(0, Values({"m1"}, {"appA"}, {}));
  index.Kill(1, Values({"m1"}, {"appA"}, {}));
  index.Prepare();
  // All members of the group are dead: the group short-circuits on live==0.
  ASSERT_TRUE(index.Collect({&m1, &app_a, &op}, &out));
  EXPECT_TRUE(out.empty());

  uint64_t epoch_before = index.epoch();
  index.Clear();
  EXPECT_GT(index.epoch(), epoch_before);
  EXPECT_EQ(index.group_count(), 0u);
  ASSERT_TRUE(index.Collect({&m1, &app_a, &op}, &out));
  EXPECT_TRUE(out.empty());
}

TEST(ShapeIndexTest, ReplansWhenCardinalitiesChange) {
  ShapeIndex index(3);
  index.Add(0, Values({"m1"}, {"appA"}, {}));
  index.Prepare();
  const CompiledPlan* plan = index.plan(0b011);
  ASSERT_NE(plan, nullptr);
  uint64_t first_epoch = plan->epoch;
  EXPECT_EQ(index.stats().plans_compiled, 1u);
  EXPECT_EQ(index.stats().replans, 0u);

  index.Add(1, Values({"m2"}, {"appA"}, {}));
  index.Prepare();
  plan = index.plan(0b011);
  ASSERT_NE(plan, nullptr);
  EXPECT_GT(plan->epoch, first_epoch);
  EXPECT_EQ(index.stats().replans, 1u);

  // No mutation -> Prepare is a no-op, no spurious recompile.
  index.Prepare();
  EXPECT_EQ(index.stats().plans_compiled, 2u);
}

TEST(ShapeIndexTest, PlanProbesSmallestAttributeFirst) {
  ShapeIndex index(3);
  // Attr 0 ("metric") is one fat bucket; attr 1 ("application") is all
  // singletons — the plan must probe attr 1 first.
  for (uint32_t i = 0; i < 32; ++i) {
    index.Add(i, Values({"hot"}, {"app" + std::to_string(i)}, {}));
  }
  index.Prepare();
  const CompiledPlan* plan = index.plan(0b011);
  ASSERT_NE(plan, nullptr);
  ASSERT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->steps[0].attr, 1u);
  EXPECT_EQ(plan->steps[1].attr, 0u);
}

TEST(ShapeIndexTest, SkewGuardFallsBackOnUnderestimatedBucket) {
  PlannerPolicy policy;
  policy.skew_guard_ratio = 8.0;
  policy.skew_guard_floor = 64;
  ShapeIndex index(3, policy);
  // 999 singleton applications plus one hot application holding 1000
  // entries: avg live bucket ~2, so the plan expects tiny application
  // buckets — probing the hot one violates the estimate 500-fold.
  uint32_t position = 0;
  for (int i = 0; i < 999; ++i) {
    index.Add(position++,
              Values({"m"}, {"cold" + std::to_string(i)}, {}));
  }
  for (int i = 0; i < 1000; ++i) {
    index.Add(position++, Values({"m"}, {"hotApp"}, {}));
  }
  index.Prepare();

  std::string metric = "m", hot = "hotApp", cold = "cold5", op = "opX";
  std::vector<uint32_t> out;
  EXPECT_TRUE(index.Collect({&metric, &cold, &op}, &out));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_FALSE(index.Collect({&metric, &hot, &op}, &out));
  EXPECT_EQ(index.stats().planned_lookups, 1u);
  EXPECT_EQ(index.stats().fallback_lookups, 1u);
}

}  // namespace
}  // namespace orcastream::plan

namespace orcastream::orca {
namespace {

OperatorMetricScope MetricAppScope(const std::string& key,
                                   const std::string& metric,
                                   const std::string& app) {
  OperatorMetricScope scope(key);
  scope.AddOperatorMetric(metric);
  scope.AddApplicationFilter(app);
  return scope;
}

TEST(RegistryPlannerTest, EnableOnPopulatedRegistryRebuildsFromLiveSlots) {
  ScopeRegistry registry;
  GraphView view;
  registry.Register(MetricAppScope("a", "m1", "app1"));
  registry.Register(MetricAppScope("b", "m1", "app2"));
  registry.Unregister("b");
  registry.set_predicate_planner(true);
  ASSERT_TRUE(registry.predicate_planner());
  ASSERT_NE(registry.operator_metric_plan(), nullptr);

  OperatorMetricContext context;
  context.application = "app1";
  context.metric = "m1";
  context.instance_name = "op";
  EXPECT_EQ(registry.MatchedKeys(context, view),
            (std::vector<std::string>{"a"}));
  EXPECT_EQ(registry.MatchedKeys(context, view),
            registry.MatchedKeysLinear(context, view));
  EXPECT_GE(registry.plan_stats().planned_lookups, 1u);

  registry.set_predicate_planner(false);
  EXPECT_FALSE(registry.predicate_planner());
  EXPECT_EQ(registry.MatchedKeys(context, view),
            (std::vector<std::string>{"a"}));
}

TEST(RegistryPlannerTest, ChurnReplansAutomatically) {
  ScopeRegistry registry;
  registry.set_predicate_planner(true);
  registry.Register(MetricAppScope("a", "m1", "app1"));
  uint64_t compiles_after_first = registry.plan_stats().plans_compiled;
  EXPECT_GE(compiles_after_first, 1u);

  registry.Register(MetricAppScope("b", "m2", "app1"));
  EXPECT_GT(registry.plan_stats().plans_compiled, compiles_after_first);
  EXPECT_GE(registry.plan_stats().replans, 1u);

  auto generation = registry.BeginGeneration();
  registry.Register(MetricAppScope("c", "m3", "app2"));
  uint64_t compiles_before_retire = registry.plan_stats().plans_compiled;
  registry.RetireGeneration(generation);
  EXPECT_GT(registry.plan_stats().plans_compiled, compiles_before_retire);
}

TEST(RegistryPlannerTest, SkewGuardFallbackStaysEquivalent) {
  ScopeRegistry registry;
  plan::PlannerPolicy policy;
  policy.skew_guard_ratio = 2.0;
  policy.skew_guard_floor = 4;
  registry.set_planner_policy(policy);
  registry.set_predicate_planner(true);
  GraphView view;
  // avg application bucket stays ~2 while "hotApp" holds 32 scopes, so a
  // hotApp lookup trips the guard and must take the legacy path — with
  // identical results.
  for (int i = 0; i < 32; ++i) {
    registry.Register(MetricAppScope("hot" + std::to_string(i), "m", "hotApp"));
  }
  for (int i = 0; i < 32; ++i) {
    registry.Register(
        MetricAppScope("cold" + std::to_string(i), "m",
                       "cold" + std::to_string(i)));
  }
  OperatorMetricContext context;
  context.application = "hotApp";
  context.metric = "m";
  context.instance_name = "op";
  auto keys = registry.MatchedKeys(context, view);
  EXPECT_EQ(keys.size(), 32u);
  EXPECT_EQ(keys, registry.MatchedKeysLinear(context, view));
  EXPECT_GE(registry.plan_stats().fallback_lookups, 1u);
}

}  // namespace
}  // namespace orcastream::orca
