#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baseline/sql_scope_eval.h"
#include "common/rng.h"
#include "orca/scope_registry.h"
#include "orca/sharded_scope_registry.h"
#include "tests/test_util.h"

namespace orcastream::orca {
namespace {

using common::PeId;
using common::Rng;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;

/// Randomized churn oracle for the predicate planner: every lookup on a
/// planner-enabled registry must return byte-identical keys to
/// MatchedKeysLinear (and, for samples grounded in a real job, to the
/// relational SqlScopeEval formulation) across registration, unregistration,
/// generation retirement, compaction, and shard migration.
class PlanEquivalenceTest : public ::testing::Test {
 protected:
  PlanEquivalenceTest() : cluster_(2) {
    AppBuilder builder("Figure2");
    builder.AddOperator("op1", "Beacon").Output("src1");
    auto body = [](AppBuilder& b, const std::string& in) {
      b.AddOperator("op3", "Split").Input({in}).Output("s3");
      b.AddOperator("op6", "Merge").Input("s3").Output("out");
    };
    builder.BeginComposite("composite1", "c1a");
    body(builder, "src1");
    builder.EndComposite();
    builder.BeginComposite("composite2", "c2");
    builder.AddOperator("op7", "Split").Input({"c1a.out"}).Output("s7");
    builder.BeginComposite("composite1", "nested");
    body(builder, "c2.s7");
    builder.EndComposite();
    builder.EndComposite();
    builder.AddOperator("snk", "NullSink").Input("c2.nested.out");
    auto model = builder.Build();
    EXPECT_TRUE(model.ok()) << model.status();
    auto job = cluster_.sam().SubmitJob(*model);
    EXPECT_TRUE(job.ok()) << job.status();
    job_ = *job;
    view_.AddJob(*cluster_.sam().FindJob(job_));
  }

  std::string Pick(Rng& rng, const std::vector<std::string>& pool) {
    return pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
  }

  OperatorMetricScope RandomOperatorMetricScope(Rng& rng,
                                                const std::string& key) {
    OperatorMetricScope scope(key);
    if (rng.Bernoulli(0.5)) scope.AddOperatorMetric(Pick(rng, kMetrics));
    if (rng.Bernoulli(0.3)) scope.AddOperatorMetric(Pick(rng, kMetrics));
    if (rng.Bernoulli(0.5)) scope.AddApplicationFilter(Pick(rng, kApps));
    if (rng.Bernoulli(0.3)) scope.AddApplicationFilter(Pick(rng, kApps));
    if (rng.Bernoulli(0.3)) scope.AddCompositeTypeFilter(Pick(rng, kComposites));
    if (rng.Bernoulli(0.3)) scope.AddOperatorNameFilter(Pick(rng, kOperators));
    if (rng.Bernoulli(0.3)) scope.AddOperatorTypeFilter(Pick(rng, kKinds));
    return scope;
  }

  PeMetricScope RandomPeMetricScope(Rng& rng, const std::string& key) {
    PeMetricScope scope(key);
    if (rng.Bernoulli(0.5)) scope.AddMetricNameFilter(Pick(rng, kMetrics));
    if (rng.Bernoulli(0.4)) scope.AddPeFilter(PeId(rng.UniformInt(1, 6)));
    if (rng.Bernoulli(0.3)) scope.AddPeFilter(PeId(rng.UniformInt(1, 6)));
    if (rng.Bernoulli(0.5)) scope.AddApplicationFilter(Pick(rng, kApps));
    return scope;
  }

  OperatorMetricContext RandomOperatorMetricContext(Rng& rng) {
    OperatorMetricContext context;
    context.job = job_;
    context.application = Pick(rng, kApps);
    context.instance_name = Pick(rng, kOperators);
    context.operator_kind = Pick(rng, kKinds);
    context.metric = Pick(rng, kMetrics);
    return context;
  }

  PeMetricContext RandomPeMetricContext(Rng& rng) {
    PeMetricContext context;
    context.job = job_;
    context.application = Pick(rng, kApps);
    context.pe = PeId(rng.UniformInt(1, 6));
    context.metric = Pick(rng, kMetrics);
    return context;
  }

  const std::vector<std::string> kMetrics = {
      "queueSize", "nTuplesProcessed", "nSeen", "latency", "absentMetric"};
  const std::vector<std::string> kApps = {"Figure2", "OtherApp", "ThirdApp",
                                          "FourthApp"};
  const std::vector<std::string> kComposites = {"composite1", "composite2",
                                                "compositeX"};
  const std::vector<std::string> kKinds = {"Beacon", "Split", "Merge",
                                           "NullSink", "Filter"};
  const std::vector<std::string> kOperators = {
      "op1", "c1a.op3", "c1a.op6", "c2.op7", "c2.nested.op3", "c2.nested.op6",
      "snk", "ghost"};

  ClusterHarness cluster_;
  common::JobId job_;
  GraphView view_;
};

TEST_F(PlanEquivalenceTest, OperatorMetricChurnStaysByteIdentical) {
  for (uint64_t seed : {1u, 20260808u, 77u}) {
    Rng rng(seed);
    ScopeRegistry registry;
    registry.set_compaction_threshold(8);  // force compactions mid-stream
    registry.set_predicate_planner(true);
    std::vector<std::string> live_keys;
    std::vector<ScopeRegistry::Generation> open_generations;
    int next_key = 0;

    for (int round = 0; round < 40; ++round) {
      // Register a burst.
      for (int i = 0; i < 10; ++i) {
        std::string key = "k" + std::to_string(next_key++);
        registry.Register(RandomOperatorMetricScope(rng, key));
        live_keys.push_back(key);
      }
      // Unregister a random handful (exercises tombstones + compaction).
      for (int i = 0; i < 4 && !live_keys.empty(); ++i) {
        size_t victim = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(live_keys.size()) - 1));
        registry.Unregister(live_keys[victim]);
        live_keys.erase(live_keys.begin() + static_cast<long>(victim));
      }
      // Occasionally open or retire a generation (logic replacement).
      if (rng.Bernoulli(0.3)) {
        open_generations.push_back(registry.BeginGeneration());
      }
      if (!open_generations.empty() && rng.Bernoulli(0.2)) {
        registry.RetireGeneration(open_generations.front());
        open_generations.erase(open_generations.begin());
        // The retirement may have removed keys; resync from the registry.
        std::vector<std::string> survivors;
        for (const std::string& key : live_keys) {
          if (registry.HasKey(key)) survivors.push_back(key);
        }
        live_keys = std::move(survivors);
      }

      for (int i = 0; i < 25; ++i) {
        OperatorMetricContext context = RandomOperatorMetricContext(rng);
        EXPECT_EQ(registry.MatchedKeys(context, view_),
                  registry.MatchedKeysLinear(context, view_))
            << "seed=" << seed << " round=" << round
            << " app=" << context.application << " metric=" << context.metric;
      }
    }
    // The planner actually ran (this is not vacuously green).
    EXPECT_GT(registry.plan_stats().planned_lookups, 0u);
    EXPECT_GT(registry.plan_stats().plans_compiled, 0u);
    EXPECT_GT(registry.compaction_count(), 0u);
  }
}

TEST_F(PlanEquivalenceTest, PeMetricChurnAgreesWithLinearAndSql) {
  Rng rng(987);
  ScopeRegistry registry;
  registry.set_compaction_threshold(8);
  registry.set_predicate_planner(true);
  const GraphView::JobRecord* record = view_.FindJob(job_);
  ASSERT_NE(record, nullptr);
  baseline::SqlScopeEval sql(*record);
  ASSERT_GT(sql.pe_instance_count(), 0u);

  std::vector<std::pair<std::string, PeMetricScope>> live;
  int next_key = 0;
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 8; ++i) {
      std::string key = "p" + std::to_string(next_key++);
      PeMetricScope scope = RandomPeMetricScope(rng, key);
      live.emplace_back(key, scope);
      registry.Register(std::move(scope));
    }
    for (int i = 0; i < 3 && !live.empty(); ++i) {
      size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      registry.Unregister(live[victim].first);
      live.erase(live.begin() + static_cast<long>(victim));
    }

    for (int i = 0; i < 20; ++i) {
      PeMetricContext context = RandomPeMetricContext(rng);
      auto planned = registry.MatchedKeys(context);
      EXPECT_EQ(planned, registry.MatchedKeysLinear(context));

      // Relational oracle: for samples grounded in the managed job (a PE
      // the job actually hosts), each key is in the planned result iff
      // the SQL formulation selects the sample for that subscope.
      if (context.application != record->app_name) continue;
      bool pe_hosted = false;
      for (const auto& pe : record->pes) {
        if (pe.id == context.pe) pe_hosted = true;
      }
      if (!pe_hosted) continue;
      std::vector<std::string> sql_keys;
      for (const auto& [key, scope] : live) {
        if (sql.Matches(scope, context)) sql_keys.push_back(key);
      }
      std::sort(sql_keys.begin(), sql_keys.end());
      std::vector<std::string> planned_sorted = planned;
      std::sort(planned_sorted.begin(), planned_sorted.end());
      EXPECT_EQ(planned_sorted, sql_keys)
          << "round=" << round << " pe=" << context.pe.value()
          << " metric=" << context.metric;
    }
  }
  EXPECT_GT(registry.plan_stats().planned_lookups, 0u);
}

TEST_F(PlanEquivalenceTest, ShardedChurnWithMigrationsStaysByteIdentical) {
  for (uint64_t seed : {3u, 4242u}) {
    Rng rng(seed);
    ShardedScopeRegistry sharded(2);
    sharded.set_max_shards(6);
    ShardedScopeRegistry::ReshardPolicy reshard;
    reshard.enabled = true;
    reshard.hot_ratio = 1.5;
    reshard.min_matches = 64;  // low gate: splits happen mid-test
    sharded.set_reshard_policy(reshard);
    sharded.set_predicate_planner(true);
    // Mirror single registry fed the identical stream; its linear scan is
    // the oracle both for sharding and for the planner.
    ScopeRegistry mirror;
    std::vector<std::string> live_keys;
    int next_key = 0;

    for (int round = 0; round < 25; ++round) {
      for (int i = 0; i < 8; ++i) {
        std::string key = "s" + std::to_string(next_key++);
        OperatorMetricScope scope = RandomOperatorMetricScope(rng, key);
        OperatorMetricScope copy = scope;
        sharded.Register(std::move(scope));
        mirror.Register(std::move(copy));
        live_keys.push_back(key);
      }
      for (int i = 0; i < 3 && !live_keys.empty(); ++i) {
        size_t victim = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(live_keys.size()) - 1));
        sharded.Unregister(live_keys[victim]);
        mirror.Unregister(live_keys[victim]);
        live_keys.erase(live_keys.begin() + static_cast<long>(victim));
      }
      // Forced migration plus policy-driven splitting mid-stream: plans on
      // both the source and destination shards must rebuild.
      if (rng.Bernoulli(0.4)) {
        sharded.MigrateApplication(
            Pick(rng, kApps),
            static_cast<size_t>(rng.UniformInt(
                0, static_cast<int64_t>(sharded.shard_count()) - 1)));
      }
      sharded.MaybeRebalance();

      for (int i = 0; i < 30; ++i) {
        OperatorMetricContext context = RandomOperatorMetricContext(rng);
        EXPECT_EQ(sharded.MatchedKeys(context, view_),
                  mirror.MatchedKeysLinear(context, view_))
            << "seed=" << seed << " round=" << round
            << " shards=" << sharded.shard_count();
      }
    }
    EXPECT_GT(sharded.plan_stats().planned_lookups, 0u);

    // Heat phase: random churn co-pins the four apps into one migration
    // group (multi-application filters), which can never split, so force
    // the policy-driven growth path deterministically. Drain the churn
    // population first — that severs the co-pin closure and drops every
    // route — then pin two apps with *single-app* subscopes onto shard 0,
    // skew traffic onto one of them, and let MaybeRebalance isolate it on
    // a freshly grown shard. Plans on both the source and the new shard
    // must rebuild: every lookup keeps checking byte-identity against the
    // mirror's linear scan.
    for (const std::string& key : live_keys) {
      sharded.Unregister(key);
      mirror.Unregister(key);
    }
    live_keys.clear();
    for (int i = 0; i < 4; ++i) {
      std::string key = "hot" + std::to_string(next_key++);
      OperatorMetricScope scope(key);
      scope.AddOperatorMetric(kMetrics[static_cast<size_t>(i) %
                                       kMetrics.size()]);
      scope.AddApplicationFilter(i < 2 ? "Figure2" : "OtherApp");
      OperatorMetricScope copy = scope;
      sharded.Register(std::move(scope));
      mirror.Register(std::move(copy));
      live_keys.push_back(key);
    }
    sharded.MigrateApplication("Figure2", 0);
    sharded.MigrateApplication("OtherApp", 0);
    size_t before_growth = sharded.shard_count();
    for (int round = 0; round < 8 && sharded.shard_count() <= before_growth;
         ++round) {
      for (int i = 0; i < 120; ++i) {
        OperatorMetricContext context = RandomOperatorMetricContext(rng);
        context.application = i % 12 == 0 ? "OtherApp" : "Figure2";
        EXPECT_EQ(sharded.MatchedKeys(context, view_),
                  mirror.MatchedKeysLinear(context, view_))
            << "seed=" << seed << " heat round=" << round;
      }
      sharded.MaybeRebalance();
    }
    EXPECT_GT(sharded.shard_count(), before_growth)
        << "no split happened; seed=" << seed;
    // Post-split: the grown shard answers with a freshly rebuilt plan.
    for (int i = 0; i < 30; ++i) {
      OperatorMetricContext context = RandomOperatorMetricContext(rng);
      context.application = "Figure2";
      EXPECT_EQ(sharded.MatchedKeys(context, view_),
                mirror.MatchedKeysLinear(context, view_))
          << "seed=" << seed << " post-split";
    }
  }
}

TEST_F(PlanEquivalenceTest, LateGrownShardInheritsPlanner) {
  ShardedScopeRegistry sharded(1);
  sharded.set_predicate_planner(true);
  size_t fresh = sharded.AddShard();
  EXPECT_TRUE(sharded.shard(fresh).predicate_planner());
  EXPECT_TRUE(sharded.residual_shard().predicate_planner());
}

}  // namespace
}  // namespace orcastream::orca
