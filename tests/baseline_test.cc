#include <gtest/gtest.h>
#include <functional>

#include "baseline/embedded_adaptation.h"
#include "baseline/script_controller.h"
#include "baseline/sql_scope_eval.h"
#include "common/rng.h"
#include "orca/scope_matcher.h"
#include "tests/test_util.h"
#include "topology/app_builder.h"

namespace orcastream::baseline {
namespace {

using apps::CauseModel;
using apps::HadoopSim;
using apps::SentimentApp;
using apps::TweetWorkload;
using common::Rng;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;

// --- Embedded adaptation (Figure 1 baseline) --------------------------------

class EmbeddedAdaptationTest : public ::testing::Test {
 protected:
  EmbeddedAdaptationTest() : cluster_(4) {
    TweetWorkload workload;
    workload.period = 0.05;
    workload.shift_time = 150;
    CauseModel initial;
    initial.known_causes = {"flash", "screen"};
    HadoopSim::Config hadoop_config;
    hadoop_config.job_duration = 60;
    hadoop_ = std::make_unique<HadoopSim>(&cluster_.sim(), hadoop_config);
    handles_ = EmbeddedAdaptation::Register(
        &cluster_.factory(), "EmbeddedSentiment", workload, initial,
        hadoop_.get(), /*threshold=*/1.0, /*retrigger_guard=*/120,
        /*check_period=*/15);
  }

  ClusterHarness cluster_;
  std::unique_ptr<HadoopSim> hadoop_;
  EmbeddedAdaptation::Handles handles_;
};

TEST_F(EmbeddedAdaptationTest, AdaptsLikeTheOrchestratorVersion) {
  auto model = EmbeddedAdaptation::Build("EmbeddedSentiment");
  ASSERT_TRUE(model.ok()) << model.status();
  // The graph carries the two extra control operators (9 total).
  EXPECT_EQ(model->operators().size(), 9u);
  ASSERT_TRUE(cluster_.sam().SubmitJob(*model).ok());

  cluster_.sim().RunUntil(140);
  EXPECT_TRUE(handles_.triggers->empty());
  cluster_.sim().RunUntil(250);
  ASSERT_EQ(handles_.triggers->size(), 1u);
  EXPECT_GT((*handles_.triggers)[0], 150);
  cluster_.sim().RunUntil(400);
  EXPECT_EQ(hadoop_->jobs_completed(), 1);
  EXPECT_TRUE(handles_.base.model->Get()->Knows("antenna"));
}

TEST_F(EmbeddedAdaptationTest, ControlWorkRidesTheDataPath) {
  auto model = EmbeddedAdaptation::Build("EmbeddedSentiment");
  ASSERT_TRUE(model.ok());
  ASSERT_TRUE(cluster_.sam().SubmitJob(*model).ok());
  cluster_.sim().RunUntil(100);
  // Every correlated (negative product) tuple is also processed by the
  // embedded detector: pure overhead the orchestrator design removes.
  EXPECT_GT(*handles_.control_tuples, 400);
}

// --- External script baseline ------------------------------------------------

TEST(ScriptControllerTest, TriggersButWithCoarserLatency) {
  ClusterHarness cluster(4);
  TweetWorkload workload;
  workload.period = 0.05;
  workload.shift_time = 150;
  CauseModel initial;
  initial.known_causes = {"flash", "screen"};
  auto handles = SentimentApp::Register(&cluster.factory(),
                                        "SentimentAnalysis", workload,
                                        initial);
  HadoopSim hadoop(&cluster.sim(), HadoopSim::Config{60, 20});
  auto model = SentimentApp::Build("SentimentAnalysis");
  ASSERT_TRUE(model.ok());
  auto job = cluster.sam().SubmitJob(*model);
  ASSERT_TRUE(job.ok());

  ScriptController::Config config;
  config.poll_period = 60;  // cron-style
  config.threshold = 1.0;
  config.retrigger_guard = 120;
  ScriptController controller(&cluster.sim(), &cluster.srm(), &hadoop,
                              handles, config);
  controller.Start(*job);

  cluster.sim().RunUntil(500);
  ASSERT_GE(controller.trigger_times().size(), 1u);
  // The script reacted within one poll period of the shift, not faster.
  EXPECT_GT(controller.trigger_times()[0], 150);
  EXPECT_LE(controller.trigger_times()[0], 150 + 2 * config.poll_period);
  EXPECT_GE(controller.polls(), 7);
  // No scoping: the script scanned every metric record of the job on
  // every poll.
  EXPECT_GT(controller.records_scanned(),
            controller.polls() * 10);
}

// --- SQL scope evaluation: property test against the matcher ------------------

/// Builds a random application with nested composites and loads it into a
/// GraphView job record.
orca::GraphView::JobRecord RandomJob(uint64_t seed) {
  Rng rng(seed);
  AppBuilder builder("RandomApp");
  static const char* kKinds[] = {"Split", "Merge", "Filter", "Beacon",
                                 "Aggregate"};
  static const char* kCompKinds[] = {"compA", "compB", "compC"};

  int op_counter = 0;
  std::vector<std::string> streams;
  // Root-level source so every graph is valid.
  builder.AddOperator("src", "Beacon").Output("s0");
  streams.push_back("s0");

  std::function<void(int)> fill = [&](int depth) {
    int members = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < members; ++i) {
      std::string name = "op" + std::to_string(op_counter++);
      const char* kind = kKinds[rng.UniformInt(0, 4)];
      std::string input = streams[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(streams.size()) - 1))];
      std::string output = "s" + std::to_string(op_counter);
      auto op = builder.AddOperator(name, kind);
      op.Input({input});
      op.Output(output);
      streams.push_back(builder.Qualify(output));
    }
    if (depth < 3 && rng.Bernoulli(0.7)) {
      std::string inst = "c" + std::to_string(op_counter++);
      builder.BeginComposite(kCompKinds[rng.UniformInt(0, 2)], inst);
      fill(depth + 1);
      builder.EndComposite();
    }
  };
  fill(0);
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();

  orca::GraphView::JobRecord record;
  record.id = common::JobId(1);
  record.app_name = "RandomApp";
  record.model = model.ValueOr(ApplicationModel("invalid"));
  return record;
}

/// Random scope with random filter combinations.
orca::OperatorMetricScope RandomScope(Rng* rng) {
  orca::OperatorMetricScope scope("s");
  if (rng->Bernoulli(0.3)) scope.AddApplicationFilter("RandomApp");
  if (rng->Bernoulli(0.2)) scope.AddApplicationFilter("OtherApp");
  if (rng->Bernoulli(0.5)) {
    static const char* kCompKinds[] = {"compA", "compB", "compC"};
    scope.AddCompositeTypeFilter(kCompKinds[rng->UniformInt(0, 2)]);
  }
  if (rng->Bernoulli(0.4)) {
    static const char* kKinds[] = {"Split", "Merge", "Filter"};
    scope.AddOperatorTypeFilter(std::string(kKinds[rng->UniformInt(0, 2)]));
  }
  if (rng->Bernoulli(0.3)) scope.AddOperatorMetric("queueSize");
  if (rng->Bernoulli(0.2)) scope.AddOperatorMetric("nTuplesProcessed");
  return scope;
}

class SqlEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlEquivalenceTest, MatcherAgreesWithRecursiveSql) {
  uint64_t seed = GetParam();
  orca::GraphView::JobRecord job = RandomJob(seed);
  orca::GraphView view;
  runtime::JobInfo info;
  info.id = job.id;
  info.app_name = job.app_name;
  info.model = job.model;
  view.AddJob(info);
  SqlScopeEval sql(job);

  Rng rng(seed * 7919 + 13);
  static const char* kMetrics[] = {"queueSize", "nTuplesProcessed",
                                   "customX"};
  for (int trial = 0; trial < 50; ++trial) {
    orca::OperatorMetricScope scope = RandomScope(&rng);
    for (const auto& op : job.model.operators()) {
      orca::OperatorMetricContext context;
      context.job = job.id;
      context.application = "RandomApp";
      context.instance_name = op.name;
      context.operator_kind = op.kind;
      context.metric = kMetrics[rng.UniformInt(0, 2)];
      context.port = -1;
      bool matcher = orca::MatchOperatorMetric(scope, context, view);
      bool sql_result = sql.Matches(scope, context);
      ASSERT_EQ(matcher, sql_result)
          << "divergence on operator " << op.name << " (composite '"
          << op.composite << "', kind " << op.kind << ", metric "
          << context.metric << ") seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SqlEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 26));

TEST(SqlScopeEvalTest, ClosureMatchesNestedContainment) {
  AppBuilder builder("App");
  builder.BeginComposite("outer", "o");
  builder.BeginComposite("middle", "m");
  builder.BeginComposite("inner", "i");
  builder.AddOperator("src", "Beacon").Output("s");
  builder.EndComposite();
  builder.EndComposite();
  builder.EndComposite();
  builder.AddOperator("snk", "NullSink").Input("o.m.i.s");
  auto model = builder.Build();
  ASSERT_TRUE(model.ok()) << model.status();

  orca::GraphView::JobRecord job;
  job.id = common::JobId(1);
  job.app_name = "App";
  job.model = *model;
  SqlScopeEval sql(job);
  // Pairs: (m,o), (i,m), (i,o) — wait, (m,o) seed + derived (i,o).
  EXPECT_EQ(sql.closure_size(), 3u);

  orca::OperatorMetricScope scope("s");
  scope.AddCompositeTypeFilter("outer");
  orca::OperatorMetricContext context;
  context.application = "App";
  context.instance_name = "o.m.i.src";
  context.operator_kind = "Beacon";
  context.metric = "m";
  context.port = -1;
  EXPECT_TRUE(sql.Matches(scope, context));
}

}  // namespace
}  // namespace orcastream::baseline
