// Soak-scenario scheduling-equivalence suite: for every scenario, a
// DeterministicExecutor run — any seed, weighted or not, batched or not,
// with the fault script and dynamic resharding on — must produce a
// per-application journal byte-identical to the serial FIFO oracle's.
// Per-application ordering is the §7 guarantee the concurrent dispatcher
// makes; these runs exercise it under sustained multi-app traffic.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "harness/scenarios.h"
#include "tests/test_util.h"

namespace orcastream {
namespace {

using harness::DispatchMode;
using harness::RunResult;
using harness::ScenarioOptions;
using testing::DeterministicScenarioOptions;
using testing::FlattenJournal;
using testing::SerialScenarioOptions;

/// Runs the named scenario fresh (scenarios are single-shot) and
/// returns its journal.
std::map<std::string, std::vector<std::string>> JournalFor(
    size_t scenario_index, const ScenarioOptions& options) {
  auto scenarios = harness::MakeAllScenarios();
  RunResult result = harness::RunScenario(*scenarios[scenario_index], options);
  EXPECT_TRUE(result.verify.ok())
      << scenarios[scenario_index]->name() << ": " << result.verify.ToString();
  return result.journal;
}

class SoakEquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SoakEquivalenceTest, TenSeedsMatchSerialOracle) {
  const size_t index = GetParam();
  auto oracle = JournalFor(index, SerialScenarioOptions());
  ASSERT_FALSE(oracle.empty());

  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ScenarioOptions options = DeterministicScenarioOptions(seed);
    auto journal = JournalFor(index, options);
    EXPECT_EQ(FlattenJournal(journal), FlattenJournal(oracle))
        << "schedule seed " << seed;
  }
}

TEST_P(SoakEquivalenceTest, WeightedDispatchMatchesSerialOracle) {
  const size_t index = GetParam();
  auto oracle = JournalFor(index, SerialScenarioOptions());

  for (uint64_t seed : {3u, 11u, 42u}) {
    ScenarioOptions options = DeterministicScenarioOptions(seed);
    options.weighted_dispatch = true;
    auto journal = JournalFor(index, options);
    EXPECT_EQ(FlattenJournal(journal), FlattenJournal(oracle))
        << "weighted, schedule seed " << seed;
  }
}

TEST_P(SoakEquivalenceTest, BatchedDispatchMatchesSerialOracle) {
  const size_t index = GetParam();
  auto oracle = JournalFor(index, SerialScenarioOptions());

  for (size_t batch : {4u, 16u}) {
    ScenarioOptions options = DeterministicScenarioOptions(/*schedule_seed=*/5);
    options.max_batch_per_step = batch;
    auto journal = JournalFor(index, options);
    EXPECT_EQ(FlattenJournal(journal), FlattenJournal(oracle))
        << "batch " << batch;
  }
}

TEST_P(SoakEquivalenceTest, ReshardingDoesNotChangeJournals) {
  const size_t index = GetParam();
  ScenarioOptions coarse = SerialScenarioOptions();
  coarse.scope_shards = 1;
  coarse.dynamic_resharding = false;
  auto oracle = JournalFor(index, coarse);

  ScenarioOptions sharded = DeterministicScenarioOptions(/*schedule_seed=*/9);
  sharded.scope_shards = 8;
  sharded.dynamic_resharding = true;
  auto journal = JournalFor(index, sharded);
  EXPECT_EQ(FlattenJournal(journal), FlattenJournal(oracle));
}

std::string ScenarioParamName(const ::testing::TestParamInfo<size_t>& info) {
  switch (info.param) {
    case 0: return "iot_fleet";
    case 1: return "fraud_pipeline";
    default: return "geo_trending";
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, SoakEquivalenceTest,
                         ::testing::Values(0, 1, 2), ScenarioParamName);

}  // namespace
}  // namespace orcastream
