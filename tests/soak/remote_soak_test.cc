// Remote-event-plane soak: every scenario run with its detection plane
// behind the src/net framed transport (inline loopback pair) must
// produce a per-application §7 journal byte-identical to the in-process
// serial oracle's, and pass the same scenario invariants and SLOs. The
// transport adds sequencing, framing, CRCs, acks, and heartbeats between
// SAM and the control plane — none of which may change what the
// orchestrator observes.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "harness/scenarios.h"
#include "tests/test_util.h"

namespace orcastream {
namespace {

using harness::RunResult;
using harness::ScenarioOptions;
using testing::FlattenJournal;
using testing::SerialScenarioOptions;

RunResult RunFor(size_t scenario_index, const ScenarioOptions& options) {
  auto scenarios = harness::MakeAllScenarios();
  RunResult result = harness::RunScenario(*scenarios[scenario_index], options);
  EXPECT_TRUE(result.verify.ok())
      << scenarios[scenario_index]->name() << ": " << result.verify.ToString();
  return result;
}

class RemoteSoakTest : public ::testing::TestWithParam<size_t> {};

TEST_P(RemoteSoakTest, LoopbackTransportMatchesInProcessOracle) {
  const size_t index = GetParam();
  RunResult oracle = RunFor(index, SerialScenarioOptions());
  ASSERT_FALSE(oracle.journal.empty());

  ScenarioOptions remote = SerialScenarioOptions();
  remote.remote_event_plane = true;
  RunResult result = RunFor(index, remote);
  EXPECT_EQ(result.events_delivered, oracle.events_delivered);
  EXPECT_EQ(FlattenJournal(result.journal), FlattenJournal(oracle.journal));
}

TEST_P(RemoteSoakTest, PumpCadenceDoesNotChangeJournals) {
  // Heartbeat/ack pacing rides the pump task; event delivery is inline on
  // the loopback path. A 4x slower pump must therefore change nothing
  // the journal can see.
  const size_t index = GetParam();
  RunResult oracle = RunFor(index, SerialScenarioOptions());

  ScenarioOptions remote = SerialScenarioOptions();
  remote.remote_event_plane = true;
  remote.remote_pump_interval = 0.2;
  RunResult result = RunFor(index, remote);
  EXPECT_EQ(FlattenJournal(result.journal), FlattenJournal(oracle.journal));
}

std::string ScenarioParamName(const ::testing::TestParamInfo<size_t>& info) {
  switch (info.param) {
    case 0: return "iot_fleet";
    case 1: return "fraud_pipeline";
    default: return "geo_trending";
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, RemoteSoakTest,
                         ::testing::Values(0, 1, 2), ScenarioParamName);

}  // namespace
}  // namespace orcastream
