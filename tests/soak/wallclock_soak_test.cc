// Wall-clock soak: every scenario driven end to end on the
// ThreadPoolExecutor — real worker threads, staged actuation, the
// fault script on — must stay live (deliver events, commit every
// transaction, keep its applications running) and record
// detection→actuation samples. Timing-sensitive invariants are
// relaxed in this mode (worker interleaving is nondeterministic);
// the soak CI job's sanitizer legs run this suite under TSan/ASan.
#include <gtest/gtest.h>

#include "harness/scenarios.h"
#include "orca/transaction_log.h"
#include "tests/test_util.h"

namespace orcastream {
namespace {

using harness::DispatchMode;
using harness::RunResult;
using harness::ScenarioOptions;

ScenarioOptions WallClockOptions(size_t workers) {
  ScenarioOptions options;
  options.mode = DispatchMode::kThreadPool;
  options.dispatch_threads = workers;
  options.duration = harness::kScenarioDuration;
  return options;
}

class WallClockSoakTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WallClockSoakTest, ScenarioStaysLiveOnWorkerPool) {
  auto scenarios = harness::MakeAllScenarios();
  auto& scenario = *scenarios[GetParam()];
  RunResult result = harness::RunScenario(scenario, WallClockOptions(3));

  EXPECT_TRUE(result.verify.ok())
      << scenario.name() << ": " << result.verify.ToString();
  EXPECT_GT(result.events_delivered, 0u);

  // The drive loop quiesced: every delivery's transaction committed.
  size_t uncommitted = 0;
  for (const auto& [lane, entries] : result.journal) {
    for (const std::string& entry : entries) {
      if (entry.size() >= 12 &&
          entry.compare(entry.size() - 12, 12, "|uncommitted") == 0) {
        ++uncommitted;
      }
    }
  }
  EXPECT_EQ(uncommitted, 0u) << scenario.name();

  // Staged actuation recorded reaction samples (the honest, includes-
  // the-apply-deferral numbers).
  uint64_t samples = 0;
  for (const auto& stats : result.latency) samples += stats.count;
  EXPECT_GT(samples, 0u) << scenario.name();
}

// A larger pool must not break liveness either (more worker
// interleavings, same quiesce guarantee).
TEST_P(WallClockSoakTest, WiderPoolStaysLive) {
  auto scenarios = harness::MakeAllScenarios();
  auto& scenario = *scenarios[GetParam()];
  RunResult result = harness::RunScenario(scenario, WallClockOptions(8));
  EXPECT_TRUE(result.verify.ok())
      << scenario.name() << ": " << result.verify.ToString();
  EXPECT_GT(result.events_delivered, 0u);
}

std::string ScenarioParamName(const ::testing::TestParamInfo<size_t>& info) {
  switch (info.param) {
    case 0: return "iot_fleet";
    case 1: return "fraud_pipeline";
    default: return "geo_trending";
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, WallClockSoakTest,
                         ::testing::Values(0, 1, 2), ScenarioParamName);

}  // namespace
}  // namespace orcastream
