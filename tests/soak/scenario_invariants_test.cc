// Soak-scenario invariant suite: every scenario, run serially (the
// oracle mode) for the full default duration, must satisfy its own
// Verify() invariants and the default detection→actuation latency SLOs.
// This is the behavioural half of the soak harness; the equivalence
// suite (soak_equivalence_test) covers the scheduling half.
#include <gtest/gtest.h>

#include "harness/scenarios.h"
#include "tests/test_util.h"

namespace orcastream {
namespace {

using harness::RunResult;
using harness::Scenario;
using testing::RunHealthyScenario;
using testing::SerialScenarioOptions;

TEST(ScenarioInvariants, IotFleetSerial) {
  auto scenario = harness::MakeIotFleetScenario();
  RunResult result = RunHealthyScenario(*scenario, SerialScenarioOptions());
  EXPECT_GT(result.events_delivered, 0u);
  EXPECT_FALSE(result.journal.empty());
}

TEST(ScenarioInvariants, FraudPipelineSerial) {
  auto scenario = harness::MakeFraudPipelineScenario();
  RunResult result = RunHealthyScenario(*scenario, SerialScenarioOptions());
  EXPECT_GT(result.events_delivered, 0u);
  EXPECT_FALSE(result.journal.empty());
}

TEST(ScenarioInvariants, GeoTrendingSerial) {
  auto scenario = harness::MakeGeoTrendingScenario();
  RunResult result = RunHealthyScenario(*scenario, SerialScenarioOptions());
  EXPECT_GT(result.events_delivered, 0u);
  EXPECT_FALSE(result.journal.empty());
}

// The invariants must hold regardless of which equivalent fault targets
// the seed picks.
TEST(ScenarioInvariants, HoldAcrossFaultSeeds) {
  for (uint64_t fault_seed : {1u, 2u, 3u}) {
    for (auto& scenario : harness::MakeAllScenarios()) {
      SCOPED_TRACE(scenario->name() + " fault_seed=" +
                   std::to_string(fault_seed));
      RunHealthyScenario(*scenario, SerialScenarioOptions(fault_seed));
    }
  }
}

// Without the fault script the scenarios still satisfy their
// (fault-gated) invariants — the harness does not depend on failures to
// make progress.
TEST(ScenarioInvariants, HoldWithoutFaults) {
  for (auto& scenario : harness::MakeAllScenarios()) {
    SCOPED_TRACE(scenario->name());
    harness::ScenarioOptions options = SerialScenarioOptions();
    options.inject_failures = false;
    harness::RunResult result = harness::RunScenario(*scenario, options);
    EXPECT_TRUE(result.verify.ok())
        << scenario->name() << ": " << result.verify.ToString();
  }
}

}  // namespace
}  // namespace orcastream
