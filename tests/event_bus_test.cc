#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "orca/event_bus.h"
#include "orca/orca_service.h"
#include "orca/orchestrator.h"
#include "sim/simulation.h"
#include "tests/test_util.h"
#include "topology/app_builder.h"

namespace orcastream::orca {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;

Event UserEvent(const std::string& name, sim::SimTime at = 0) {
  Event event;
  event.type = Event::Type::kUser;
  event.summary = "userEvent(" + name + ")";
  event.matched = {"scope"};
  UserEventContext context;
  context.name = name;
  context.at = at;
  event.context = std::move(context);
  return event;
}

/// Records user-event deliveries with their delivery times; can publish
/// more events from inside a handler to exercise queued-while-handling.
class RecordingLogic : public Orchestrator {
 public:
  RecordingLogic(sim::Simulation* sim, EventBus* bus)
      : sim_(sim), bus_(bus) {}

  void HandleOrcaStart(OrcaContext&, const OrcaStartContext&) override {
    ++starts;
  }

  void HandleUserEvent(OrcaContext&, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    delivered.push_back(context.name);
    delivered_at.push_back(sim_->Now());
    if (!publish_on.empty() && context.name == publish_on.front()) {
      publish_on.erase(publish_on.begin());
      bus_->Publish(UserEvent(context.name + ".child"));
    }
  }

  int starts = 0;
  std::vector<std::string> delivered;
  std::vector<sim::SimTime> delivered_at;
  /// Event names whose handler publishes a ".child" follow-up.
  std::vector<std::string> publish_on;

 private:
  sim::Simulation* sim_;
  EventBus* bus_;
};

TEST(EventBusTest, DeliversInFifoOrder) {
  sim::Simulation sim;
  EventBus bus(&sim, {});
  RecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  for (int i = 0; i < 5; ++i) {
    bus.Publish(UserEvent("e" + std::to_string(i)));
  }
  EXPECT_EQ(bus.queue_depth(), 5u);
  sim.RunUntil(1);
  EXPECT_EQ(logic.delivered,
            (std::vector<std::string>{"e0", "e1", "e2", "e3", "e4"}));
  EXPECT_EQ(bus.queue_depth(), 0u);
  EXPECT_EQ(bus.events_delivered(), 5u);
}

TEST(EventBusTest, EventsPublishedWhileHandlingAreQueuedFifo) {
  sim::Simulation sim;
  EventBus bus(&sim, {});
  RecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  // e0's handler publishes e0.child; the child must be delivered AFTER the
  // already-queued e1/e2, preserving arrival order (§4.2).
  logic.publish_on = {"e0"};
  bus.Publish(UserEvent("e0"));
  bus.Publish(UserEvent("e1"));
  bus.Publish(UserEvent("e2"));
  sim.RunUntil(1);
  EXPECT_EQ(logic.delivered,
            (std::vector<std::string>{"e0", "e1", "e2", "e0.child"}));
}

EventBus::Config PacedConfig(double interval) {
  EventBus::Config config;
  config.dispatch_interval = interval;
  return config;
}

TEST(EventBusTest, DispatchIntervalPacesQueuedDeliveries) {
  sim::Simulation sim;
  EventBus bus(&sim, PacedConfig(0.5));
  RecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  for (int i = 0; i < 4; ++i) {
    bus.Publish(UserEvent("e" + std::to_string(i)));
  }
  sim.RunUntil(10);
  ASSERT_EQ(logic.delivered_at.size(), 4u);
  // First delivery fires immediately; each successive queued delivery is
  // spaced by the dispatch interval.
  EXPECT_DOUBLE_EQ(logic.delivered_at[0], 0.0);
  EXPECT_DOUBLE_EQ(logic.delivered_at[1], 0.5);
  EXPECT_DOUBLE_EQ(logic.delivered_at[2], 1.0);
  EXPECT_DOUBLE_EQ(logic.delivered_at[3], 1.5);
}

TEST(EventBusTest, PacingEnforcedAcrossQueueDrain) {
  sim::Simulation sim;
  EventBus bus(&sim, PacedConfig(0.5));
  RecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  bus.Publish(UserEvent("e0"));
  sim.RunUntil(0.1);  // e0 delivered at t=0, queue drains
  ASSERT_EQ(logic.delivered_at, (std::vector<sim::SimTime>{0.0}));
  // Published 0.1 s after the last delivery: the remaining 0.4 s of the
  // dispatch interval is still owed — the event must NOT fire at delay 0
  // just because the queue emptied in between.
  bus.Publish(UserEvent("e1"));
  sim.RunUntil(5);
  ASSERT_EQ(logic.delivered_at.size(), 2u);
  EXPECT_DOUBLE_EQ(logic.delivered_at[1], 0.5);
  // Once a full interval has elapsed since the last delivery, dispatch is
  // immediate again.
  sim.RunUntil(10);
  bus.Publish(UserEvent("e2"));
  sim.RunUntil(20);
  ASSERT_EQ(logic.delivered_at.size(), 3u);
  EXPECT_DOUBLE_EQ(logic.delivered_at[2], 10.0);
}

TEST(EventBusTest, PacingAppliesWhenLogicReattaches) {
  sim::Simulation sim;
  EventBus bus(&sim, PacedConfig(2.0));
  RecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  bus.Publish(UserEvent("e0"));
  sim.RunUntil(1);  // delivered at t=0
  bus.set_logic(nullptr);
  bus.Publish(UserEvent("e1"));  // retained: no logic attached
  sim.RunUntil(1.5);
  EXPECT_EQ(bus.queue_depth(), 1u);
  // Reattaching at t=1.5 owes 0.5 s of the interval from the t=0 delivery.
  bus.set_logic(&logic);
  sim.RunUntil(10);
  ASSERT_EQ(logic.delivered_at.size(), 2u);
  EXPECT_DOUBLE_EQ(logic.delivered_at[1], 2.0);
}

TEST(EventBusTest, NullLogicRetainsQueueUntilReplacement) {
  sim::Simulation sim;
  EventBus bus(&sim, {});
  bus.Publish(UserEvent("early"));
  sim.RunUntil(1);
  // No logic attached: nothing delivered, nothing lost.
  EXPECT_EQ(bus.events_delivered(), 0u);
  EXPECT_EQ(bus.queue_depth(), 1u);

  RecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  // Attaching logic alone resumes dispatch — the retained event must not
  // stall until the next Publish.
  sim.RunUntil(2);
  EXPECT_EQ(logic.delivered, (std::vector<std::string>{"early"}));
  bus.Publish(UserEvent("late"));
  sim.RunUntil(3);
  EXPECT_EQ(logic.delivered, (std::vector<std::string>{"early", "late"}));
}

TEST(EventBusTest, EveryDeliveryIsJournaled) {
  sim::Simulation sim;
  EventBus bus(&sim, {});
  RecordingLogic logic(&sim, &bus);
  bus.set_logic(&logic);
  bus.Publish(UserEvent("one"));
  bus.Publish(UserEvent("two"));
  sim.RunUntil(1);
  EXPECT_EQ(bus.transactions().committed_count(), 2);
  EXPECT_TRUE(bus.transactions().Uncommitted().empty());
  EXPECT_EQ(bus.current_transaction(), 0);
  auto records = bus.transactions().records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0]->event_summary, "userEvent(one)");
  EXPECT_EQ(records[1]->event_summary, "userEvent(two)");
}

// --- Service-level: pacing and reliable redelivery through the bus ----------

class PacedOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    orca.RegisterEventScope(UserEventScope("user"));
    ++starts;
  }
  void HandleUserEvent(OrcaContext& orca, const UserEventContext& context,
                       const std::vector<std::string>&) override {
    delivered.push_back(context.name);
    delivered_at.push_back(orca.Now());
  }
  int starts = 0;
  std::vector<std::string> delivered;
  std::vector<sim::SimTime> delivered_at;
};

TEST(EventBusServiceTest, DispatchIntervalRespectedThroughService) {
  ClusterHarness cluster(2);
  OrcaService::Config config;
  config.dispatch_interval = 1.0;
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      config);
  auto logic_holder = std::make_unique<PacedOrca>();
  PacedOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(2);  // start event delivered and paced out
  for (int i = 0; i < 3; ++i) {
    service.InjectUserEvent("b" + std::to_string(i));
  }
  cluster.sim().RunUntil(20);
  ASSERT_EQ(logic->delivered_at.size(), 3u);
  EXPECT_DOUBLE_EQ(logic->delivered_at[1] - logic->delivered_at[0], 1.0);
  EXPECT_DOUBLE_EQ(logic->delivered_at[2] - logic->delivered_at[1], 1.0);
}

TEST(EventBusServiceTest, ReplaceLogicRedeliversUncommittedEvents) {
  ClusterHarness cluster(2);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  auto logic_holder = std::make_unique<PacedOrca>();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(1);
  // Queue events without running the simulator: their transactions never
  // begin under the old logic.
  service.InjectUserEvent("pending1");
  service.InjectUserEvent("pending2");
  ASSERT_GE(service.queue_depth(), 2u);

  auto replacement_holder = std::make_unique<PacedOrca>();
  PacedOrca* replacement = replacement_holder.get();
  ASSERT_TRUE(service.ReplaceLogic(std::move(replacement_holder)).ok());
  cluster.sim().RunUntil(2);

  // Fresh start first, then the surviving queued events, in order (§7).
  EXPECT_EQ(replacement->starts, 1);
  EXPECT_EQ(replacement->delivered,
            (std::vector<std::string>{"pending1", "pending2"}));
}

TEST(EventBusServiceTest, ShutdownToLoadRedeliversQueuedEvents) {
  ClusterHarness cluster(2);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  ASSERT_TRUE(service.Load(std::make_unique<PacedOrca>()).ok());
  cluster.sim().RunUntil(1);  // start delivered, "user" scope registered
  // Queue events without running the simulator: their delivery
  // transactions never begin under the first logic.
  service.InjectUserEvent("pending1");
  service.InjectUserEvent("pending2");
  ASSERT_GE(service.queue_depth(), 2u);

  // Full service teardown — not just ReplaceLogic. The outgoing logic's
  // scopes are retired, but the queued-yet-uncommitted events survive
  // (§7 reliable delivery).
  service.Shutdown();
  EXPECT_FALSE(service.loaded());
  EXPECT_TRUE(service.scopes().empty());
  EXPECT_EQ(service.queue_depth(), 2u);
  cluster.sim().RunUntil(2);
  EXPECT_EQ(service.queue_depth(), 2u);  // retained, not delivered

  auto second_holder = std::make_unique<PacedOrca>();
  PacedOrca* second = second_holder.get();
  ASSERT_TRUE(service.Load(std::move(second_holder)).ok());
  cluster.sim().RunUntil(3);

  // Fresh start first, then the surviving events, in order (§7).
  EXPECT_EQ(second->starts, 1);
  EXPECT_EQ(second->delivered,
            (std::vector<std::string>{"pending1", "pending2"}));
  EXPECT_EQ(service.queue_depth(), 0u);
}

}  // namespace
}  // namespace orcastream::orca
