#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "orca/scope_registry.h"
#include "orca/sharded_scope_registry.h"
#include "tests/test_util.h"

namespace orcastream::orca {
namespace {

using common::PeId;
using common::Rng;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;

/// A ShardedScopeRegistry and a single ScopeRegistry fed the identical
/// registration stream. The single registry is the equivalence oracle: the
/// sharded result must match its indexed path, which in turn must match
/// its linear-scan path — three implementations, one answer.
class MirroredRegistries {
 public:
  explicit MirroredRegistries(size_t shard_count) : sharded(shard_count) {}

  template <typename Scope>
  void Register(const Scope& scope) {
    sharded.Register(scope);
    single.Register(scope);
  }

  size_t Unregister(const std::string& key) {
    size_t removed = sharded.Unregister(key);
    EXPECT_EQ(removed, single.Unregister(key)) << "key " << key;
    return removed;
  }

  ScopeRegistry::Generation BeginGeneration() {
    ScopeRegistry::Generation generation = sharded.BeginGeneration();
    EXPECT_EQ(generation, single.BeginGeneration());
    return generation;
  }

  size_t RetireGeneration(ScopeRegistry::Generation generation) {
    size_t removed = sharded.RetireGeneration(generation);
    EXPECT_EQ(removed, single.RetireGeneration(generation));
    return removed;
  }

  ShardedScopeRegistry sharded;
  ScopeRegistry single;
};

/// Multi-application fixture: the Figure 2 job drives composite/containment
/// filters, and the application pool spans 9 apps so subscopes scatter
/// across every shard (plus absent apps to exercise the unassigned path).
class ShardedScopeRegistryTest : public ::testing::Test {
 protected:
  ShardedScopeRegistryTest() : cluster_(2) {
    AppBuilder builder("Figure2");
    builder.AddOperator("op1", "Beacon").Output("src1");
    builder.BeginComposite("composite1", "c1a");
    builder.AddOperator("op3", "Split").Input({"src1"}).Output("s3");
    builder.AddOperator("op6", "Merge").Input("s3").Output("out");
    builder.EndComposite();
    builder.AddOperator("snk", "NullSink").Input("c1a.out");
    auto model = builder.Build();
    EXPECT_TRUE(model.ok()) << model.status();
    auto job = cluster_.sam().SubmitJob(*model);
    EXPECT_TRUE(job.ok()) << job.status();
    job_ = *job;
    view_.AddJob(*cluster_.sam().FindJob(job_));
  }

  std::string Pick(Rng& rng, const std::vector<std::string>& pool) {
    return pool[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(pool.size()) - 1))];
  }

  OperatorMetricScope RandomOperatorMetricScope(Rng& rng,
                                                const std::string& key) {
    OperatorMetricScope scope(key);
    if (rng.Bernoulli(0.5)) scope.AddOperatorMetric(Pick(rng, kMetrics));
    // Application filters drive shard routing: none (wildcard → residual),
    // one, or several (forcing shared pins or a shard conflict).
    if (rng.Bernoulli(0.7)) scope.AddApplicationFilter(Pick(rng, kApps));
    if (rng.Bernoulli(0.3)) scope.AddApplicationFilter(Pick(rng, kApps));
    if (rng.Bernoulli(0.3)) scope.AddCompositeTypeFilter("composite1");
    if (rng.Bernoulli(0.4)) scope.AddOperatorTypeFilter(Pick(rng, kKinds));
    return scope;
  }

  OperatorMetricContext RandomOperatorMetricContext(Rng& rng) {
    OperatorMetricContext context;
    context.job = job_;
    context.application = Pick(rng, kApps);
    context.instance_name = Pick(rng, kOperators);
    context.operator_kind = Pick(rng, kKinds);
    context.metric = Pick(rng, kMetrics);
    return context;
  }

  /// Asserts the three implementations agree on every event type.
  void CheckEquivalence(MirroredRegistries& mirror, Rng& rng) {
    OperatorMetricContext op = RandomOperatorMetricContext(rng);
    auto op_keys = mirror.sharded.MatchedKeys(op, view_);
    ASSERT_EQ(op_keys, mirror.single.MatchedKeys(op, view_))
        << "sharded vs single divergence, app=" << op.application;
    ASSERT_EQ(op_keys, mirror.single.MatchedKeysLinear(op, view_));

    PeMetricContext pe;
    pe.job = job_;
    pe.application = Pick(rng, kApps);
    pe.pe = PeId(rng.UniformInt(1, 6));
    pe.metric = Pick(rng, kMetrics);
    auto pe_keys = mirror.sharded.MatchedKeys(pe);
    ASSERT_EQ(pe_keys, mirror.single.MatchedKeys(pe));
    ASSERT_EQ(pe_keys, mirror.single.MatchedKeysLinear(pe));

    PeFailureContext failure;
    failure.job = job_;
    failure.application = Pick(rng, kApps);
    failure.reason = Pick(rng, kReasons);
    failure.operators = {Pick(rng, kOperators)};
    auto failure_keys = mirror.sharded.MatchedKeys(failure, view_);
    ASSERT_EQ(failure_keys, mirror.single.MatchedKeys(failure, view_));
    ASSERT_EQ(failure_keys, mirror.single.MatchedKeysLinear(failure, view_));

    JobEventContext job_event;
    job_event.job = job_;
    job_event.application = Pick(rng, kApps);
    bool is_submission = rng.Bernoulli(0.5);
    auto job_keys = mirror.sharded.MatchedKeys(job_event, is_submission);
    ASSERT_EQ(job_keys, mirror.single.MatchedKeys(job_event, is_submission));
    ASSERT_EQ(job_keys,
              mirror.single.MatchedKeysLinear(job_event, is_submission));

    UserEventContext user;
    user.name = Pick(rng, kUserNames);
    auto user_keys = mirror.sharded.MatchedKeys(user);
    ASSERT_EQ(user_keys, mirror.single.MatchedKeys(user));
    ASSERT_EQ(user_keys, mirror.single.MatchedKeysLinear(user));
  }

  /// ≥ 8 applications so every shard count in the tests gets populated,
  /// plus an app absent from every registration (always unassigned).
  const std::vector<std::string> kApps = {
      "Figure2", "App0", "App1", "App2", "App3", "App4", "App5", "App6",
      "App7",    "NeverRegistered"};
  const std::vector<std::string> kMetrics = {"queueSize", "nTuplesProcessed",
                                             "latency", "absentMetric"};
  const std::vector<std::string> kKinds = {"Beacon", "Split", "Merge",
                                           "NullSink", "Filter"};
  const std::vector<std::string> kOperators = {"op1", "c1a.op3", "c1a.op6",
                                               "snk", "ghost"};
  const std::vector<std::string> kReasons = {"segfault", "host failure",
                                             "oom"};
  const std::vector<std::string> kUserNames = {"poke", "refresh", "drain"};

  ClusterHarness cluster_;
  common::JobId job_;
  GraphView view_;
};

/// The tentpole property: under randomized register/unregister/retire
/// churn across ≥8 applications, the sharded registry stays byte-identical
/// to the single registry and the linear oracle — for every shard count,
/// including the count-1 degeneracy.
TEST_F(ShardedScopeRegistryTest, RandomizedMultiAppChurnEquivalence) {
  for (size_t shard_count : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shard_count));
    Rng rng(1000 + shard_count);
    MirroredRegistries mirror(shard_count);
    mirror.sharded.set_compaction_threshold(4);
    mirror.single.set_compaction_threshold(4);

    int next_key = 0;
    std::vector<std::string> live_keys;
    std::unordered_map<std::string, ScopeRegistry::Generation> key_generation;
    std::vector<ScopeRegistry::Generation> generations = {0};

    auto register_random = [&] {
      std::string key = "k" + std::to_string(next_key++);
      switch (rng.UniformInt(0, 4)) {
        case 0:
          mirror.Register(RandomOperatorMetricScope(rng, key));
          break;
        case 1: {
          PeMetricScope scope(key);
          if (rng.Bernoulli(0.5)) scope.AddMetricNameFilter(Pick(rng, kMetrics));
          if (rng.Bernoulli(0.4)) scope.AddPeFilter(PeId(rng.UniformInt(1, 6)));
          if (rng.Bernoulli(0.6)) scope.AddApplicationFilter(Pick(rng, kApps));
          if (rng.Bernoulli(0.3)) scope.AddApplicationFilter(Pick(rng, kApps));
          mirror.Register(scope);
          break;
        }
        case 2: {
          PeFailureScope scope(key);
          if (rng.Bernoulli(0.6)) scope.AddApplicationFilter(Pick(rng, kApps));
          if (rng.Bernoulli(0.3)) scope.AddApplicationFilter(Pick(rng, kApps));
          if (rng.Bernoulli(0.4)) scope.AddReasonFilter(Pick(rng, kReasons));
          mirror.Register(scope);
          break;
        }
        case 3: {
          JobEventScope scope(key, rng.Bernoulli(0.5)
                                       ? JobEventScope::Kind::kSubmission
                                       : JobEventScope::Kind::kBoth);
          if (rng.Bernoulli(0.6)) scope.AddApplicationFilter(Pick(rng, kApps));
          mirror.Register(scope);
          break;
        }
        default: {
          UserEventScope scope(key);
          if (rng.Bernoulli(0.6)) scope.AddNameFilter(Pick(rng, kUserNames));
          mirror.Register(scope);
          break;
        }
      }
      live_keys.push_back(key);
      key_generation[key] = mirror.sharded.current_generation();
    };

    for (int step = 0; step < 600; ++step) {
      double roll = rng.UniformDouble(0.0, 1.0);
      if (roll < 0.50 || live_keys.empty()) {
        register_random();
      } else if (roll < 0.85) {
        size_t pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(live_keys.size()) - 1));
        std::string key = live_keys[pick];
        ASSERT_EQ(mirror.Unregister(key), 1u) << "key " << key;
        live_keys.erase(live_keys.begin() + static_cast<ptrdiff_t>(pick));
      } else if (roll < 0.92) {
        generations.push_back(mirror.BeginGeneration());
      } else {
        size_t pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(generations.size()) - 1));
        ScopeRegistry::Generation generation = generations[pick];
        mirror.RetireGeneration(generation);
        std::vector<std::string> still_live;
        for (const auto& key : live_keys) {
          if (key_generation[key] != generation) still_live.push_back(key);
        }
        live_keys = std::move(still_live);
      }
      ASSERT_EQ(mirror.sharded.size(), live_keys.size());
      ASSERT_EQ(mirror.single.size(), live_keys.size());
      if (step % 5 == 0) CheckEquivalence(mirror, rng);
    }
    CheckEquivalence(mirror, rng);
    // The churn exercised the tombstone machinery inside the shards.
    EXPECT_GT(mirror.sharded.compaction_count(), 0u);

    // Drain everything: the shard map must be fully released.
    for (const auto& key : live_keys) mirror.Unregister(key);
    EXPECT_TRUE(mirror.sharded.empty());
    EXPECT_EQ(mirror.sharded.tracked_applications(), 0u);
  }
}

TEST_F(ShardedScopeRegistryTest, ShardCountOneDegeneracy) {
  // One shard: every application routes to shard 0, wildcards to the
  // residual shard — semantically the single-registry setup.
  ShardedScopeRegistry registry(1);
  EXPECT_EQ(registry.shard_count(), 1u);

  OperatorMetricScope scoped("scoped");
  scoped.AddApplicationFilter("Figure2");
  scoped.AddOperatorMetric("queueSize");
  registry.Register(scoped);
  OperatorMetricScope wild("wild");
  registry.Register(wild);

  EXPECT_EQ(registry.shard_of("Figure2"), 0);
  EXPECT_EQ(registry.shard(0).size(), 1u);
  EXPECT_EQ(registry.residual_shard().size(), 1u);

  OperatorMetricContext context;
  context.job = job_;
  context.application = "Figure2";
  context.instance_name = "op1";
  context.operator_kind = "Beacon";
  context.metric = "queueSize";
  EXPECT_EQ(registry.MatchedKeys(context, view_),
            (std::vector<std::string>{"scoped", "wild"}));

  // Shard count 0 clamps to 1.
  EXPECT_EQ(ShardedScopeRegistry(0).shard_count(), 1u);
}

TEST_F(ShardedScopeRegistryTest, UnassignedApplicationConsultsResidualOnly) {
  ShardedScopeRegistry registry(4);
  OperatorMetricScope wild("wild");  // residual
  registry.Register(wild);
  OperatorMetricScope other("other");
  other.AddApplicationFilter("App0");
  registry.Register(other);

  OperatorMetricContext context;
  context.job = job_;
  context.application = "NeverRegistered";
  context.instance_name = "op1";
  context.operator_kind = "Beacon";
  context.metric = "queueSize";
  EXPECT_EQ(registry.shard_of("NeverRegistered"), -1);
  EXPECT_EQ(registry.MatchedKeys(context, view_),
            (std::vector<std::string>{"wild"}));
}

TEST_F(ShardedScopeRegistryTest, MultiAppScopePinsAllItsApplications) {
  ShardedScopeRegistry registry(8);
  // A subscope naming two fresh applications pins both to one shard; a
  // later single-app subscope follows the pin.
  PeFailureScope pair("pair");
  pair.AddApplicationFilter("App0");
  pair.AddApplicationFilter("App1");
  registry.Register(pair);
  int shard_a = registry.shard_of("App0");
  ASSERT_GE(shard_a, 0);
  EXPECT_EQ(registry.shard_of("App1"), shard_a);

  PeFailureScope solo("solo");
  solo.AddApplicationFilter("App1");
  registry.Register(solo);
  EXPECT_EQ(registry.shard_of("App1"), shard_a);

  PeFailureContext context;
  context.job = job_;
  context.application = "App1";
  context.reason = "segfault";
  EXPECT_EQ(registry.MatchedKeys(context, view_),
            (std::vector<std::string>{"pair", "solo"}));
}

TEST_F(ShardedScopeRegistryTest, ConflictingApplicationPinsFallToResidual) {
  ShardedScopeRegistry registry(8);
  // Pin enough single-app subscopes that two applications land on
  // different shards, then register a subscope naming both.
  std::string app_a;
  std::string app_b;
  for (int i = 0; i < 16 && app_b.empty(); ++i) {
    std::string app = "App" + std::to_string(i);
    JobEventScope scope("pin" + std::to_string(i));
    scope.AddApplicationFilter(app);
    registry.Register(scope);
    if (app_a.empty()) {
      app_a = app;
    } else if (registry.shard_of(app) != registry.shard_of(app_a)) {
      app_b = app;
    }
  }
  ASSERT_FALSE(app_b.empty()) << "hash placed 16 apps on one of 8 shards?";

  size_t residual_before = registry.residual_shard().size();
  JobEventScope conflicted("conflicted");
  conflicted.AddApplicationFilter(app_a);
  conflicted.AddApplicationFilter(app_b);
  registry.Register(conflicted);
  EXPECT_EQ(registry.residual_shard().size(), residual_before + 1);

  // Still matched for events of either application.
  for (const std::string& app : {app_a, app_b}) {
    JobEventContext context;
    context.job = job_;
    context.application = app;
    auto keys = registry.MatchedKeys(context, /*is_submission=*/true);
    EXPECT_TRUE(std::find(keys.begin(), keys.end(), "conflicted") !=
                keys.end())
        << "app " << app;
  }
}

TEST_F(ShardedScopeRegistryTest, ShardMapReleasedOnUnregisterAndRetire) {
  ShardedScopeRegistry registry(4);
  PeFailureScope unreg("unreg");
  unreg.AddApplicationFilter("App0");
  registry.Register(unreg);
  EXPECT_EQ(registry.tracked_applications(), 1u);
  EXPECT_EQ(registry.Unregister("unreg"), 1u);
  EXPECT_EQ(registry.tracked_applications(), 0u);

  ScopeRegistry::Generation generation = registry.BeginGeneration();
  PeFailureScope retired("retired");
  retired.AddApplicationFilter("App1");
  registry.Register(retired);
  EXPECT_EQ(registry.tracked_applications(), 1u);
  EXPECT_EQ(registry.RetireGeneration(generation), 1u);
  EXPECT_EQ(registry.tracked_applications(), 0u);
  EXPECT_TRUE(registry.empty());
}

TEST_F(ShardedScopeRegistryTest, RetireGenerationSpansAllShards) {
  ShardedScopeRegistry registry(4);
  registry.Register(UserEventScope("unowned"));  // generation 0, residual

  ScopeRegistry::Generation generation = registry.BeginGeneration();
  for (int i = 0; i < 8; ++i) {
    PeFailureScope scope("g" + std::to_string(i));
    scope.AddApplicationFilter("App" + std::to_string(i));  // scatter shards
    registry.Register(scope);
  }
  registry.Register(UserEventScope("g-user"));  // residual, same generation
  EXPECT_EQ(registry.size(), 10u);

  EXPECT_EQ(registry.RetireGeneration(generation), 9u);
  EXPECT_EQ(registry.size(), 1u);
  UserEventContext context;
  context.name = "anything";
  EXPECT_EQ(registry.MatchedKeys(context),
            (std::vector<std::string>{"unowned"}));
  // Retiring again is a no-op.
  EXPECT_EQ(registry.RetireGeneration(generation), 0u);
}

TEST_F(ShardedScopeRegistryTest, BatchMatchesPerSampleLookups) {
  Rng rng(99);
  MirroredRegistries mirror(4);
  for (int i = 0; i < 200; ++i) {
    mirror.Register(RandomOperatorMetricScope(rng, "s" + std::to_string(i)));
  }
  // Large batch across many apps → several busy shards → the parallel
  // path; results must equal per-sample lookups on both registries.
  std::vector<OperatorMetricContext> contexts;
  for (int i = 0; i < 300; ++i) {
    contexts.push_back(RandomOperatorMetricContext(rng));
  }
  auto batched = mirror.sharded.MatchOperatorMetricBatch(contexts, view_);
  ASSERT_EQ(batched.size(), contexts.size());
  for (size_t i = 0; i < contexts.size(); ++i) {
    ASSERT_EQ(batched[i], mirror.sharded.MatchedKeys(contexts[i], view_));
    ASSERT_EQ(batched[i], mirror.single.MatchedKeysLinear(contexts[i], view_));
  }

  // Small batch takes the serial path; same contract.
  std::vector<OperatorMetricContext> small(contexts.begin(),
                                           contexts.begin() + 8);
  auto small_batched = mirror.sharded.MatchOperatorMetricBatch(small, view_);
  for (size_t i = 0; i < small.size(); ++i) {
    ASSERT_EQ(small_batched[i], mirror.sharded.MatchedKeys(small[i], view_));
  }

  // PE metric batch.
  for (int i = 0; i < 100; ++i) {
    PeMetricScope scope("p" + std::to_string(i));
    if (rng.Bernoulli(0.5)) scope.AddMetricNameFilter(Pick(rng, kMetrics));
    if (rng.Bernoulli(0.6)) scope.AddApplicationFilter(Pick(rng, kApps));
    mirror.Register(scope);
  }
  std::vector<PeMetricContext> pe_contexts;
  for (int i = 0; i < 200; ++i) {
    PeMetricContext context;
    context.job = job_;
    context.application = Pick(rng, kApps);
    context.pe = PeId(rng.UniformInt(1, 6));
    context.metric = Pick(rng, kMetrics);
    pe_contexts.push_back(std::move(context));
  }
  auto pe_batched = mirror.sharded.MatchPeMetricBatch(pe_contexts);
  for (size_t i = 0; i < pe_contexts.size(); ++i) {
    ASSERT_EQ(pe_batched[i], mirror.sharded.MatchedKeys(pe_contexts[i]));
    ASSERT_EQ(pe_batched[i], mirror.single.MatchedKeysLinear(pe_contexts[i]));
  }
}

// --- Dynamic resharding ------------------------------------------------------

/// The tentpole correctness property: hot-shard splits triggered mid-churn
/// must never change what matches — the sharded registry stays
/// byte-identical to the mirrored no-split single registry and its linear
/// oracle while subscope groups migrate underneath the match stream.
TEST_F(ShardedScopeRegistryTest, RandomizedChurnWithHotShardSplits) {
  for (size_t shard_count : {2u, 4u}) {
    SCOPED_TRACE("shard_count=" + std::to_string(shard_count));
    Rng rng(7000 + shard_count);
    MirroredRegistries mirror(shard_count);
    mirror.sharded.set_compaction_threshold(4);
    mirror.single.set_compaction_threshold(4);
    // Aggressive splitter: low volume floor, growth headroom, so the
    // skewed traffic below actually triggers migrations mid-stream.
    ShardedScopeRegistry::ReshardPolicy policy;
    policy.hot_ratio = 1.25;
    policy.min_matches = 32;
    policy.max_moves_per_round = 4;
    mirror.sharded.set_reshard_policy(policy);
    mirror.sharded.set_max_shards(8);

    int next_key = 0;
    std::vector<std::string> live_keys;
    for (int step = 0; step < 500; ++step) {
      double roll = rng.UniformDouble(0.0, 1.0);
      if (roll < 0.55 || live_keys.empty()) {
        std::string key = "k" + std::to_string(next_key++);
        mirror.Register(RandomOperatorMetricScope(rng, key));
        live_keys.push_back(key);
      } else if (roll < 0.75) {
        size_t pick = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(live_keys.size()) - 1));
        ASSERT_EQ(mirror.Unregister(live_keys[pick]), 1u);
        live_keys.erase(live_keys.begin() + static_cast<ptrdiff_t>(pick));
      } else {
        // Zipf-flavored traffic: App0 dominates, so whichever shard owns
        // it runs hot and the splitter has something to split.
        OperatorMetricContext context = RandomOperatorMetricContext(rng);
        if (rng.Bernoulli(0.7)) context.application = "App0";
        auto keys = mirror.sharded.MatchedKeys(context, view_);
        ASSERT_EQ(keys, mirror.single.MatchedKeys(context, view_));
        ASSERT_EQ(keys, mirror.single.MatchedKeysLinear(context, view_));
      }
      if (step % 25 == 24) mirror.sharded.MaybeRebalance();
      if (step % 5 == 0) CheckEquivalence(mirror, rng);
    }
    // The skew must actually have exercised the splitter, or this test
    // proves nothing.
    EXPECT_GT(mirror.sharded.reshard_count(), 0u);
    EXPECT_GT(mirror.sharded.migrated_subscopes(), 0u);
    CheckEquivalence(mirror, rng);

    for (const auto& key : live_keys) mirror.Unregister(key);
    EXPECT_TRUE(mirror.sharded.empty());
    EXPECT_EQ(mirror.sharded.tracked_applications(), 0u);
  }
}

TEST_F(ShardedScopeRegistryTest, MigrateApplicationMovesCoPinnedGroup) {
  ShardedScopeRegistry registry(2);
  // App0+App1 share a subscope (co-pinned); App2 is independent.
  PeFailureScope pair("pair");
  pair.AddApplicationFilter("App0");
  pair.AddApplicationFilter("App1");
  registry.Register(pair);
  PeFailureScope solo("solo");
  solo.AddApplicationFilter("App0");
  registry.Register(solo);
  JobEventScope other("other");
  other.AddApplicationFilter("App2");
  registry.Register(other);

  int from = registry.shard_of("App0");
  ASSERT_GE(from, 0);
  ASSERT_EQ(registry.shard_of("App1"), from);
  size_t target = registry.AddShard();
  EXPECT_EQ(registry.shard_count(), 3u);

  // Migrating App0 must carry App1 (the co-pin closure) and both keys.
  EXPECT_EQ(registry.MigrateApplication("App0", target), 2u);
  EXPECT_EQ(registry.shard_of("App0"), static_cast<int>(target));
  EXPECT_EQ(registry.shard_of("App1"), static_cast<int>(target));
  EXPECT_EQ(registry.shard(static_cast<size_t>(from)).size(), 0u)
      << "source shard should have released both migrated subscopes";

  // Match results and order are unchanged after the move; registrations
  // keep routing to the new shard.
  PeFailureContext context;
  context.job = job_;
  context.application = "App0";
  context.reason = "segfault";
  EXPECT_EQ(registry.MatchedKeys(context, view_),
            (std::vector<std::string>{"pair", "solo"}));
  PeFailureScope late("late");
  late.AddApplicationFilter("App1");
  registry.Register(late);
  EXPECT_EQ(registry.shard(target).size(), 3u);

  // Order across a migration stays sequence-ascending even when the
  // destination already held later-sequence subscopes: "other" (seq 3)
  // lives on App2's shard; move App0's group (seq 1, 2) there too.
  size_t dest2 = static_cast<size_t>(registry.shard_of("App2"));
  EXPECT_EQ(registry.MigrateApplication("App0", dest2), 3u);
  EXPECT_EQ(registry.MatchedKeys(context, view_),
            (std::vector<std::string>{"pair", "solo"}));
  JobEventContext job_context;
  job_context.job = job_;
  job_context.application = "App2";
  EXPECT_EQ(registry.MatchedKeys(job_context, /*is_submission=*/true),
            (std::vector<std::string>{"other"}));

  // No-op moves: unknown app, same shard, out-of-range target.
  EXPECT_EQ(registry.MigrateApplication("Ghost", 0), 0u);
  EXPECT_EQ(registry.MigrateApplication("App0", dest2), 0u);
  EXPECT_EQ(registry.MigrateApplication("App0", 99), 0u);
}

TEST_F(ShardedScopeRegistryTest, LoadCountersAndShardLoads) {
  ShardedScopeRegistry registry(2);
  PeFailureScope scoped("a");
  scoped.AddApplicationFilter("App0");
  registry.Register(scoped);
  registry.Register(UserEventScope("wild"));  // residual

  PeFailureContext context;
  context.job = job_;
  context.application = "App0";
  context.reason = "oom";
  for (int i = 0; i < 5; ++i) registry.MatchedKeys(context, view_);
  context.application = "NeverRegistered";  // residual-only lookups
  for (int i = 0; i < 3; ++i) registry.MatchedKeys(context, view_);

  auto loads = registry.shard_loads();
  ASSERT_EQ(loads.size(), registry.shard_count() + 1);  // + residual row
  size_t app_shard = static_cast<size_t>(registry.shard_of("App0"));
  EXPECT_EQ(loads[app_shard].subscopes, 1u);
  EXPECT_EQ(loads[app_shard].applications, 1u);
  EXPECT_EQ(loads[app_shard].matches, 5u);
  EXPECT_EQ(loads.back().subscopes, 1u);
  EXPECT_EQ(loads.back().matches, registry.residual_matches());
  EXPECT_EQ(registry.residual_matches(), 3u);

  // Below the volume floor nothing rebalances; above it, only if a shard
  // is actually hot relative to the mean.
  ShardedScopeRegistry::ReshardPolicy policy;
  policy.min_matches = 1u << 30;
  registry.set_reshard_policy(policy);
  EXPECT_EQ(registry.MaybeRebalance(), 0u);
  policy.min_matches = 1;
  policy.enabled = false;
  registry.set_reshard_policy(policy);
  EXPECT_EQ(registry.MaybeRebalance(), 0u);
}

TEST_F(ShardedScopeRegistryTest, MaybeRebalanceSplitsDominantApplication) {
  ShardedScopeRegistry registry(2);
  // Two applications forced onto the same shard via co-pinning with a
  // third, then unregister the link: both stay resident on one shard.
  PeFailureScope link("link");
  link.AddApplicationFilter("App0");
  link.AddApplicationFilter("App1");
  registry.Register(link);
  PeFailureScope a("a");
  a.AddApplicationFilter("App0");
  registry.Register(a);
  PeFailureScope b("b");
  b.AddApplicationFilter("App1");
  registry.Register(b);
  ASSERT_EQ(registry.Unregister("link"), 1u);
  int shard = registry.shard_of("App0");
  ASSERT_EQ(registry.shard_of("App1"), shard);

  // Skewed traffic: App0 dominates its shard's volume.
  PeFailureContext context;
  context.job = job_;
  context.reason = "segfault";
  for (int i = 0; i < 90; ++i) {
    context.application = "App0";
    registry.MatchedKeys(context, view_);
  }
  for (int i = 0; i < 10; ++i) {
    context.application = "App1";
    registry.MatchedKeys(context, view_);
  }

  ShardedScopeRegistry::ReshardPolicy policy;
  policy.hot_ratio = 1.5;
  policy.min_matches = 50;
  registry.set_reshard_policy(policy);
  registry.set_max_shards(4);
  EXPECT_GT(registry.MaybeRebalance(), 0u);
  EXPECT_GT(registry.reshard_count(), 0u);
  // The dominant app was isolated away from its cold co-resident.
  EXPECT_NE(registry.shard_of("App0"), registry.shard_of("App1"));
  // Counters decayed so the next round reacts to fresh traffic.
  auto loads = registry.shard_loads();
  uint64_t total = 0;
  for (const auto& load : loads) total += load.matches;
  EXPECT_LT(total, 100u);

  // Matching still agrees with itself after the split.
  context.application = "App0";
  EXPECT_EQ(registry.MatchedKeys(context, view_),
            (std::vector<std::string>{"a"}));
  context.application = "App1";
  EXPECT_EQ(registry.MatchedKeys(context, view_),
            (std::vector<std::string>{"b"}));
}

TEST_F(ShardedScopeRegistryTest, ClearReleasesShardsAndMap) {
  ShardedScopeRegistry registry(4);
  PeFailureScope scoped("a");
  scoped.AddApplicationFilter("App0");
  registry.Register(scoped);
  registry.Register(UserEventScope("b"));
  EXPECT_EQ(registry.size(), 2u);
  registry.Clear();
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.tracked_applications(), 0u);
  UserEventContext context;
  context.name = "poke";
  EXPECT_TRUE(registry.MatchedKeys(context).empty());
}

}  // namespace
}  // namespace orcastream::orca
