#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "orca/orca_service.h"
#include "orca/orchestrator.h"
#include "tests/test_util.h"
#include "topology/app_builder.h"

namespace orcastream {
namespace {

using common::Rng;
using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;

ApplicationModel TinyApp(const std::string& name) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon").Output("s").Param("period", 5.0);
  builder.AddOperator("snk", "NullSink").Input("s");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

// =============================================================================
// Property 1: dependency scheduling invariants on random DAGs (§4.4).
//
// For a random dependency DAG, submitting a random target must satisfy:
//   (a) every application in the target's dependency closure runs,
//       nothing outside it does (snapshot prune);
//   (b) every dependency is submitted no later than its dependents;
//   (c) each app's submission time respects every uptime requirement:
//       t(app) >= t(dep) + uptime(app, dep) - epsilon;
//   (d) the dependency registration never accepted a cycle.
// =============================================================================

class RecordingOrca : public orca::Orchestrator {
 public:
  void HandleOrcaStart(orca::OrcaContext& orca,
                       const orca::OrcaStartContext&) override {
    orca.RegisterEventScope(orca::JobEventScope("jobs"));
  }
  void HandleJobSubmissionEvent(orca::OrcaContext&,
                                const orca::JobEventContext& context,
                                const std::vector<std::string>&) override {
    submitted_at[context.config_id] = context.at;
  }
  std::map<std::string, double> submitted_at;
};

class DependencyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DependencyPropertyTest, RandomDagSchedulingInvariants) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  ClusterHarness cluster(8);
  orca::OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());

  // Random DAG: apps a0..aN-1, edges only from higher to lower index
  // (guarantees acyclicity of the attempted graph).
  int n = static_cast<int>(rng.UniformInt(4, 10));
  std::vector<std::string> ids;
  for (int i = 0; i < n; ++i) {
    std::string id = "a" + std::to_string(i);
    ids.push_back(id);
    orca::AppConfig config;
    config.id = id;
    config.application_name = id + "App";
    config.garbage_collectable = rng.Bernoulli(0.5);
    config.gc_timeout_seconds = rng.UniformDouble(5, 50);
    ASSERT_TRUE(
        service.RegisterApplication(config, TinyApp(id + "App")).ok());
  }
  std::map<std::string, std::vector<std::pair<std::string, double>>> edges;
  for (int i = 1; i < n; ++i) {
    for (int j = 0; j < i; ++j) {
      if (!rng.Bernoulli(0.4)) continue;
      double uptime = rng.Bernoulli(0.5) ? 0 : rng.UniformDouble(1, 40);
      ASSERT_TRUE(service.RegisterDependency(ids[i], ids[j], uptime).ok());
      edges[ids[i]].emplace_back(ids[j], uptime);
    }
  }
  // (d) adding any reverse edge must be rejected as a cycle.
  for (const auto& [app, deps] : edges) {
    for (const auto& [dep, uptime] : deps) {
      ASSERT_TRUE(
          service.RegisterDependency(dep, app, 0).IsInvalidArgument());
    }
  }

  auto logic_holder = std::make_unique<RecordingOrca>();
  RecordingOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(0.5);

  // Submit a random target.
  std::string target = ids[static_cast<size_t>(rng.UniformInt(0, n - 1))];
  ASSERT_TRUE(service.SubmitApplication(target).ok());
  cluster.sim().RunUntil(1000);

  // Expected closure: target + transitive dependencies.
  std::set<std::string> closure;
  std::function<void(const std::string&)> visit =
      [&](const std::string& app) {
        if (!closure.insert(app).second) return;
        for (const auto& [dep, uptime] : edges[app]) visit(dep);
      };
  visit(target);

  // (a) exactly the closure runs.
  for (const auto& id : ids) {
    EXPECT_EQ(service.IsRunning(id), closure.count(id) > 0)
        << id << " seed " << seed;
  }
  // (b) + (c) ordering and uptime requirements.
  for (const auto& app : closure) {
    ASSERT_TRUE(logic->submitted_at.count(app) > 0) << app;
    for (const auto& [dep, uptime] : edges[app]) {
      double t_app = logic->submitted_at.at(app);
      double t_dep = logic->submitted_at.at(dep);
      EXPECT_LE(t_dep, t_app) << dep << " -> " << app << " seed " << seed;
      EXPECT_GE(t_app + 1e-6, t_dep + uptime)
          << app << " violated uptime on " << dep << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, DependencyPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// =============================================================================
// Property 2: placement invariants under random job churn (§2.1, §4.3).
//
// Submitting and cancelling random jobs (some with exclusive pools, some
// with exlocation constraints) must never violate:
//   (a) a host exclusively owned by a job hosts no other job's PEs;
//   (b) PEs sharing an exlocation tag within a job land on distinct hosts;
//   (c) cancelled jobs release their hosts for future exclusives.
// =============================================================================

class PlacementPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacementPropertyTest, RandomChurnKeepsInvariants) {
  uint64_t seed = GetParam();
  Rng rng(seed * 31 + 7);
  ClusterHarness cluster(6);

  std::vector<common::JobId> live;
  std::map<common::JobId, bool> exclusive_job;

  for (int step = 0; step < 30; ++step) {
    bool cancel = !live.empty() && rng.Bernoulli(0.35);
    if (cancel) {
      size_t index =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                    live.size()) - 1));
      ASSERT_TRUE(cluster.sam().CancelJob(live[index]).ok());
      exclusive_job.erase(live[index]);
      live.erase(live.begin() + static_cast<long>(index));
    } else {
      bool exclusive = rng.Bernoulli(0.3);
      bool exlocate = rng.Bernoulli(0.4);
      AppBuilder builder("App" + std::to_string(step));
      if (exclusive) builder.AddHostPool("own", {}, true);
      auto src = builder.AddOperator("src", "Beacon").Output("s").Param(
          "period", 5.0);
      if (exclusive) src.Pool("own");
      if (exlocate) src.Exlocate("x");
      auto snk = builder.AddOperator("snk", "NullSink").Input("s");
      if (exclusive) snk.Pool("own");
      if (exlocate) snk.Exlocate("x");
      auto model = builder.Build();
      ASSERT_TRUE(model.ok());
      auto job = cluster.sam().SubmitJob(*model);
      if (!job.ok()) {
        // Full cluster under exclusivity pressure is legal; skip.
        continue;
      }
      live.push_back(*job);
      exclusive_job[*job] = exclusive;

      // (b) exlocation: the two PEs of this job on distinct hosts.
      if (exlocate) {
        const runtime::JobInfo* info = cluster.sam().FindJob(*job);
        ASSERT_EQ(info->pes.size(), 2u);
        EXPECT_NE(info->pes[0].host, info->pes[1].host)
            << "exlocation violated, seed " << seed << " step " << step;
      }
    }

    // (a) exclusivity: hosts of an exclusive job host nobody else.
    std::map<common::HostId, std::set<common::JobId>> hosts_in_use;
    for (common::JobId job : live) {
      const runtime::JobInfo* info = cluster.sam().FindJob(job);
      for (const auto& pe : info->pes) {
        hosts_in_use[pe.host].insert(job);
      }
    }
    for (common::JobId job : live) {
      if (!exclusive_job[job]) continue;
      const runtime::JobInfo* info = cluster.sam().FindJob(job);
      for (const auto& pe : info->pes) {
        EXPECT_EQ(hosts_in_use[pe.host].size(), 1u)
            << "exclusive host shared, seed " << seed << " step " << step;
      }
    }
    cluster.sim().RunFor(1);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChurn, PlacementPropertyTest,
                         ::testing::Range<uint64_t>(1, 16));

// =============================================================================
// Property 3: simulation determinism — identical seeds give identical runs.
// =============================================================================

TEST(DeterminismTest, IdenticalSeedsIdenticalTraces) {
  auto run = [](uint64_t seed) {
    runtime::Sam::Config config;
    config.seed = seed;
    ClusterHarness cluster(3, config);
    auto* log = cluster.AddSinkKind("LogSink");
    AppBuilder builder("App");
    builder.AddOperator("src", "Beacon").Output("s").Param("period", 0.1);
    builder.AddOperator("sample", "Sample")
        .Input("s")
        .Output("kept")
        .Param("rate", 0.5);
    builder.AddOperator("snk", "LogSink").Input("kept");
    auto model = builder.Build();
    EXPECT_TRUE(model.ok());
    EXPECT_TRUE(cluster.sam().SubmitJob(*model).ok());
    cluster.sim().RunUntil(50);
    std::vector<int64_t> seqs;
    for (const auto& tuple : *log) seqs.push_back(tuple.IntOr("seq", -1));
    return seqs;
  };
  auto a = run(7);
  auto b = run(7);
  auto c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // different seed shifts the sampling decisions
  EXPECT_GT(a.size(), 100u);
  EXPECT_LT(a.size(), 400u);  // ~50% of ~500 tuples
}

}  // namespace
}  // namespace orcastream
