#include <gtest/gtest.h>

#include "orca/orca_service.h"
#include "orca/rules.h"
#include "tests/test_util.h"
#include "topology/app_builder.h"

namespace orcastream::orca {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::Tuple;

ApplicationModel PipelineApp(const std::string& name) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon").Output("s").Param("period", 0.2);
  builder.AddOperator("flt", "Filter")
      .Input("s")
      .Output("f")
      .Param("field", "seq")
      .Param("op", ">=")
      .Param("value", "0");
  builder.AddOperator("snk", "NullSink").Input("f");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

class PortAndPeMetricOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    // Port-level operator metrics (the paper's "operator port metrics"
    // event type).
    OperatorMetricScope ports("portMetrics");
    ports.SetPortScope(OperatorMetricScope::PortScope::kPortLevel);
    ports.AddOperatorNameFilter("flt");
    orca.RegisterEventScope(ports);
    // PE-level metrics.
    PeMetricScope pe_scope("peMetrics");
    pe_scope.AddMetricNameFilter(BuiltinMetric::kNumTupleBytesProcessed);
    orca.RegisterEventScope(pe_scope);
    orca.SubmitApplication("app");
  }
  void HandleOperatorMetricEvent(
      OrcaContext&, const OperatorMetricContext& context,
      const std::vector<std::string>& scopes) override {
    (void)scopes;
    port_events.push_back(context);
  }
  void HandlePeMetricEvent(OrcaContext&, const PeMetricContext& context,
                           const std::vector<std::string>& scopes) override {
    (void)scopes;
    pe_events.push_back(context);
  }
  std::vector<OperatorMetricContext> port_events;
  std::vector<PeMetricContext> pe_events;
};

TEST(ServiceMetricsTest, PortAndPeLevelEventsFlow) {
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, PipelineApp("App")).ok());
  auto logic_holder = std::make_unique<PortAndPeMetricOrca>();
  PortAndPeMetricOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(16);

  // Port events: flt has 1 input + 1 output port, each reporting its
  // tuple counter.
  ASSERT_GE(logic->port_events.size(), 2u);
  bool saw_input = false, saw_output = false;
  for (const auto& event : logic->port_events) {
    EXPECT_EQ(event.instance_name, "flt");
    EXPECT_GE(event.port, 0);
    EXPECT_GT(event.value, 0);
    if (event.output_port) saw_output = true;
    if (!event.output_port) saw_input = true;
  }
  EXPECT_TRUE(saw_input);
  EXPECT_TRUE(saw_output);

  // PE events: bytes processed per PE (the source PE legitimately
  // reports 0 — it only submits), same epoch as the port events.
  ASSERT_GE(logic->pe_events.size(), 1u);
  bool nonzero_bytes = false;
  for (const auto& event : logic->pe_events) {
    EXPECT_EQ(event.metric, BuiltinMetric::kNumTupleBytesProcessed);
    if (event.value > 0) nonzero_bytes = true;
  }
  EXPECT_TRUE(nonzero_bytes);
  EXPECT_EQ(logic->pe_events[0].epoch, logic->port_events[0].epoch);
}

TEST(ServiceMetricsTest, OperatorLevelScopeExcludesPortSamples) {
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, PipelineApp("App")).ok());

  auto rules = std::make_unique<RuleOrchestrator>();
  std::vector<int32_t> seen_ports;
  rules->OnStart([](OrcaContext& orca) { orca.SubmitApplication("app"); });
  OperatorMetricScope scope("ignored");
  scope.AddOperatorNameFilter("flt");  // default: operator level only
  rules->WhenMetric(scope, nullptr,
                    [&seen_ports](OrcaContext&,
                                  const OperatorMetricContext& context) {
                      seen_ports.push_back(context.port);
                    });
  ASSERT_TRUE(service.Load(std::move(rules)).ok());
  cluster.sim().RunUntil(16);
  ASSERT_FALSE(seen_ports.empty());
  for (int32_t port : seen_ports) EXPECT_EQ(port, -1);
}

TEST(ServiceMetricsTest, RuleBasedAlgorithmSwitching) {
  // §1's third motivating example as a compact test: a metric rule
  // cancels variant A and submits variant B at runtime.
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  for (const char* name : {"VariantA", "VariantB"}) {
    AppConfig config;
    config.id = name;
    config.application_name = name;
    ASSERT_TRUE(
        service.RegisterApplication(config, PipelineApp(name)).ok());
  }
  auto rules = std::make_unique<RuleOrchestrator>();
  rules->OnStart(
      [](OrcaContext& orca) { orca.SubmitApplication("VariantA"); });
  OperatorMetricScope scope("ignored");
  scope.AddApplicationFilter("VariantA");
  scope.AddOperatorNameFilter("src");
  scope.AddOperatorMetric(BuiltinMetric::kNumTuplesSubmitted);
  bool switched = false;
  rules->WhenMetric(
      scope,
      [](const OperatorMetricContext& context) {
        return context.value > 100;  // the "pattern"
      },
      [&switched](OrcaContext& orca, const OperatorMetricContext&) {
        if (switched) return;
        switched = true;
        ASSERT_TRUE(orca.CancelApplication("VariantA").ok());
        ASSERT_TRUE(orca.SubmitApplication("VariantB").ok());
      });
  ASSERT_TRUE(service.Load(std::move(rules)).ok());
  // src emits 5/s; >100 tuples after ~20 s; second pull round at t=30.
  cluster.sim().RunUntil(14.5);
  EXPECT_TRUE(service.IsRunning("VariantA"));
  EXPECT_FALSE(service.IsRunning("VariantB"));
  cluster.sim().RunUntil(60);
  EXPECT_TRUE(switched);
  EXPECT_FALSE(service.IsRunning("VariantA"));
  EXPECT_TRUE(service.IsRunning("VariantB"));
}

TEST(ServiceMetricsTest, EpochsAdvanceMonotonically) {
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, PipelineApp("App")).ok());
  auto logic_holder = std::make_unique<PortAndPeMetricOrca>();
  PortAndPeMetricOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(70);
  ASSERT_GE(logic->pe_events.size(), 4u);
  for (size_t i = 1; i < logic->pe_events.size(); ++i) {
    EXPECT_GE(logic->pe_events[i].epoch, logic->pe_events[i - 1].epoch);
  }
  EXPECT_GE(logic->pe_events.back().epoch, 4);
}

}  // namespace
}  // namespace orcastream::orca
