#include <gtest/gtest.h>

#include "orca/orca_service.h"
#include "orca/rules.h"
#include "tests/test_util.h"
#include "topology/app_builder.h"

namespace orcastream::orca {
namespace {

using orcastream::testing::ClusterHarness;
using topology::AppBuilder;
using topology::ApplicationModel;
using topology::Tuple;

ApplicationModel PipelineApp(const std::string& name) {
  AppBuilder builder(name);
  builder.AddOperator("src", "Beacon").Output("s").Param("period", 0.2);
  builder.AddOperator("flt", "Filter")
      .Input("s")
      .Output("f")
      .Param("field", "seq")
      .Param("op", ">=")
      .Param("value", "0");
  builder.AddOperator("snk", "NullSink").Input("f");
  auto model = builder.Build();
  EXPECT_TRUE(model.ok()) << model.status();
  return model.ValueOr(ApplicationModel("invalid"));
}

class PortAndPeMetricOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca,
                       const OrcaStartContext&) override {
    // Port-level operator metrics (the paper's "operator port metrics"
    // event type).
    OperatorMetricScope ports("portMetrics");
    ports.SetPortScope(OperatorMetricScope::PortScope::kPortLevel);
    ports.AddOperatorNameFilter("flt");
    orca.RegisterEventScope(ports);
    // PE-level metrics.
    PeMetricScope pe_scope("peMetrics");
    pe_scope.AddMetricNameFilter(BuiltinMetric::kNumTupleBytesProcessed);
    orca.RegisterEventScope(pe_scope);
    orca.SubmitApplication("app");
  }
  void HandleOperatorMetricEvent(
      OrcaContext&, const OperatorMetricContext& context,
      const std::vector<std::string>& scopes) override {
    (void)scopes;
    port_events.push_back(context);
  }
  void HandlePeMetricEvent(OrcaContext&, const PeMetricContext& context,
                           const std::vector<std::string>& scopes) override {
    (void)scopes;
    pe_events.push_back(context);
  }
  std::vector<OperatorMetricContext> port_events;
  std::vector<PeMetricContext> pe_events;
};

TEST(ServiceMetricsTest, PortAndPeLevelEventsFlow) {
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, PipelineApp("App")).ok());
  auto logic_holder = std::make_unique<PortAndPeMetricOrca>();
  PortAndPeMetricOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(16);

  // Port events: flt has 1 input + 1 output port, each reporting its
  // tuple counter.
  ASSERT_GE(logic->port_events.size(), 2u);
  bool saw_input = false, saw_output = false;
  for (const auto& event : logic->port_events) {
    EXPECT_EQ(event.instance_name, "flt");
    EXPECT_GE(event.port, 0);
    EXPECT_GT(event.value, 0);
    if (event.output_port) saw_output = true;
    if (!event.output_port) saw_input = true;
  }
  EXPECT_TRUE(saw_input);
  EXPECT_TRUE(saw_output);

  // PE events: bytes processed per PE (the source PE legitimately
  // reports 0 — it only submits), same epoch as the port events.
  ASSERT_GE(logic->pe_events.size(), 1u);
  bool nonzero_bytes = false;
  for (const auto& event : logic->pe_events) {
    EXPECT_EQ(event.metric, BuiltinMetric::kNumTupleBytesProcessed);
    if (event.value > 0) nonzero_bytes = true;
  }
  EXPECT_TRUE(nonzero_bytes);
  EXPECT_EQ(logic->pe_events[0].epoch, logic->port_events[0].epoch);
}

TEST(ServiceMetricsTest, OperatorLevelScopeExcludesPortSamples) {
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, PipelineApp("App")).ok());

  auto rules = std::make_unique<RuleOrchestrator>();
  std::vector<int32_t> seen_ports;
  rules->OnStart([](OrcaContext& orca) { orca.SubmitApplication("app"); });
  OperatorMetricScope scope("ignored");
  scope.AddOperatorNameFilter("flt");  // default: operator level only
  rules->WhenMetric(scope, nullptr,
                    [&seen_ports](OrcaContext&,
                                  const OperatorMetricContext& context) {
                      seen_ports.push_back(context.port);
                    });
  ASSERT_TRUE(service.Load(std::move(rules)).ok());
  cluster.sim().RunUntil(16);
  ASSERT_FALSE(seen_ports.empty());
  for (int32_t port : seen_ports) EXPECT_EQ(port, -1);
}

TEST(ServiceMetricsTest, RuleBasedAlgorithmSwitching) {
  // §1's third motivating example as a compact test: a metric rule
  // cancels variant A and submits variant B at runtime.
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  for (const char* name : {"VariantA", "VariantB"}) {
    AppConfig config;
    config.id = name;
    config.application_name = name;
    ASSERT_TRUE(
        service.RegisterApplication(config, PipelineApp(name)).ok());
  }
  auto rules = std::make_unique<RuleOrchestrator>();
  rules->OnStart(
      [](OrcaContext& orca) { orca.SubmitApplication("VariantA"); });
  OperatorMetricScope scope("ignored");
  scope.AddApplicationFilter("VariantA");
  scope.AddOperatorNameFilter("src");
  scope.AddOperatorMetric(BuiltinMetric::kNumTuplesSubmitted);
  bool switched = false;
  rules->WhenMetric(
      scope,
      [](const OperatorMetricContext& context) {
        return context.value > 100;  // the "pattern"
      },
      [&switched](OrcaContext& orca, const OperatorMetricContext&) {
        if (switched) return;
        switched = true;
        ASSERT_TRUE(orca.CancelApplication("VariantA").ok());
        ASSERT_TRUE(orca.SubmitApplication("VariantB").ok());
      });
  ASSERT_TRUE(service.Load(std::move(rules)).ok());
  // src emits 5/s; >100 tuples after ~20 s; second pull round at t=30.
  cluster.sim().RunUntil(14.5);
  EXPECT_TRUE(service.IsRunning("VariantA"));
  EXPECT_FALSE(service.IsRunning("VariantB"));
  cluster.sim().RunUntil(60);
  EXPECT_TRUE(switched);
  EXPECT_FALSE(service.IsRunning("VariantA"));
  EXPECT_TRUE(service.IsRunning("VariantB"));
}

TEST(ServiceMetricsTest, EpochsAdvanceMonotonically) {
  ClusterHarness cluster(3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm());
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, PipelineApp("App")).ok());
  auto logic_holder = std::make_unique<PortAndPeMetricOrca>();
  PortAndPeMetricOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(70);
  ASSERT_GE(logic->pe_events.size(), 4u);
  for (size_t i = 1; i < logic->pe_events.size(); ++i) {
    EXPECT_GE(logic->pe_events[i].epoch, logic->pe_events[i - 1].epoch);
  }
  EXPECT_GE(logic->pe_events.back().epoch, 4);
}

/// Satellite: the shard/queue observability surface. Shard loads track
/// where subscopes live and which shard absorbs the match volume; queue
/// stats expose per-application depth/delivered/backlog-age under async
/// dispatch (and stay empty on the serial path).
TEST(ServiceMetricsTest, ShardAndQueueObservability) {
  ClusterHarness cluster(3);
  OrcaService::Config service_config;
  service_config.scope_shards = 2;
  service_config.dispatch_executor =
      std::make_shared<DeterministicExecutor>(&cluster.sim(), /*seed=*/3);
  OrcaService service(&cluster.sim(), &cluster.sam(), &cluster.srm(),
                      service_config);
  AppConfig config;
  config.id = "app";
  config.application_name = "App";
  ASSERT_TRUE(service.RegisterApplication(config, PipelineApp("App")).ok());
  auto logic_holder = std::make_unique<PortAndPeMetricOrca>();
  PortAndPeMetricOrca* logic = logic_holder.get();
  ASSERT_TRUE(service.Load(std::move(logic_holder)).ok());
  cluster.sim().RunUntil(35);
  ASSERT_FALSE(logic->pe_events.empty());

  // Shard loads: one row per shard plus the residual row; subscope
  // occupancy sums to the registry size, and the pull rounds charged
  // match volume somewhere (the PE-metric scope above is app-filterless,
  // i.e. residual).
  auto loads = service.shard_loads();
  ASSERT_EQ(loads.size(), service.scopes().shard_count() + 1);
  size_t subscopes = 0;
  uint64_t matches = 0;
  for (const auto& load : loads) {
    subscopes += load.subscopes;
    matches += load.matches;
  }
  EXPECT_EQ(subscopes, service.scopes().size());
  EXPECT_GT(matches, 0u);
  EXPECT_EQ(service.reshard_count(), 0u);  // volume below the floor
  EXPECT_EQ(service.migrated_subscopes(), 0u);

  // Queue stats: the simulation is quiescent, so every queue drained;
  // per-queue delivered counts add up to the service total, and the
  // application queue for "App" saw the metric events.
  auto stats = service.queue_stats();
  ASSERT_FALSE(stats.empty());
  uint64_t delivered = 0;
  for (const auto& s : stats) {
    EXPECT_EQ(s.depth, 0u) << s.key;
    EXPECT_EQ(s.backlog_age, 0.0) << s.key;
    delivered += s.delivered;
  }
  EXPECT_EQ(delivered, service.events_delivered());
  EXPECT_EQ(service.app_queue_depth("App"), 0u);
  EXPECT_EQ(service.app_queue_backlog_age("App"), 0.0);
  bool app_queue_seen = false;
  for (const auto& s : stats) {
    if (s.key == "App" && s.delivered > 0) app_queue_seen = true;
  }
  EXPECT_TRUE(app_queue_seen);

  // Serial services expose the same accessors as empty/zero.
  OrcaService serial(&cluster.sim(), &cluster.sam(), &cluster.srm());
  EXPECT_TRUE(serial.queue_stats().empty());
  EXPECT_EQ(serial.app_queue_depth("App"), 0u);
  EXPECT_EQ(serial.app_queue_backlog_age("App"), 0.0);
  EXPECT_EQ(serial.shard_loads().size(),
            serial.scopes().shard_count() + 1);
}

}  // namespace
}  // namespace orcastream::orca
