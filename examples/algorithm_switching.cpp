// §1's third motivating example: "one may choose to deploy a low resource
// consumption streaming algorithm A at first, but switch to a more
// resource hungry and more accurate streaming algorithm B when a certain
// pattern is detected (such as low prediction accuracy)."
//
// Two variants of a scoring application are registered: "fast" (cheap,
// approximate — its accuracy custom metric degrades when the input gets
// hard) and "accurate" (3x per-tuple cost, stable accuracy). A
// RuleOrchestrator (the §7 rules extension) watches the accuracy metric
// and switches variants at runtime by cancelling one job and submitting
// the other — pure control-plane actuation, no change to either variant's
// data-processing code.

#include <cstdio>
#include <memory>

#include "ops/relational.h"
#include "ops/sources.h"
#include "ops/standard.h"
#include "orca/orca_service.h"
#include "orca/rules.h"
#include "runtime/sam.h"
#include "runtime/srm.h"
#include "sim/simulation.h"
#include "topology/app_builder.h"

using namespace orcastream;  // NOLINT — example brevity

namespace {

/// Registers a scorer kind whose accuracy metric reflects how well the
/// algorithm handles the current input difficulty.
void RegisterScorer(runtime::OperatorFactory* factory,
                    const std::string& kind, double skill) {
  factory->RegisterOrReplace(kind, [skill] {
    return std::make_unique<ops::Functor>(
        [skill](const topology::Tuple& tuple,
                runtime::OperatorContext* ctx)
            -> std::optional<topology::Tuple> {
          ctx->CreateCustomMetric("nCorrect");
          ctx->CreateCustomMetric("nScored");
          double difficulty = tuple.DoubleOr("difficulty", 0.1);
          bool correct = ctx->rng()->Bernoulli(
              std::max(0.05, 1.0 - difficulty / skill));
          ctx->AddToCustomMetric("nScored", 1);
          if (correct) ctx->AddToCustomMetric("nCorrect", 1);
          topology::Tuple out = tuple;
          out.Set("prediction", correct);
          return out;
        });
  });
}

topology::ApplicationModel BuildVariant(const std::string& app_name,
                                        const std::string& scorer_kind,
                                        double cost) {
  topology::AppBuilder builder(app_name);
  builder.AddOperator("feed", "EventFeed").Output("events");
  builder.AddOperator("scorer", scorer_kind)
      .Input("events")
      .Output("scored")
      .CostPerTuple(cost);
  builder.AddOperator("snk", "NullSink").Input("scored");
  return *builder.Build();
}

}  // namespace

int main() {
  sim::Simulation sim;
  runtime::Srm srm(&sim);
  for (int i = 0; i < 3; ++i) srm.AddHost("host" + std::to_string(i));
  runtime::OperatorFactory factory;
  ops::RegisterStandardOperators(&factory);
  runtime::Sam sam(&sim, &srm, &factory);
  orca::OrcaService service(&sim, &sam, &srm);

  // The event feed: difficulty jumps at t=300 (the "pattern").
  factory.RegisterOrReplace("EventFeed", [] {
    ops::CallbackSource::Options options;
    options.period = 0.05;
    options.generator = [](common::Rng*, sim::SimTime now,
                           int64_t seq) -> std::optional<topology::Tuple> {
      topology::Tuple t;
      t.Set("seq", seq);
      t.Set("difficulty", now < 300 ? 0.2 : 0.8);
      return t;
    };
    return std::make_unique<ops::CallbackSource>(options);
  });
  RegisterScorer(&factory, "FastScorer", /*skill=*/1.0);      // cheap
  RegisterScorer(&factory, "AccurateScorer", /*skill=*/4.0);  // 3x cost

  orca::AppConfig fast;
  fast.id = "fast";
  fast.application_name = "ScoringFast";
  service.RegisterApplication(fast,
                              BuildVariant("ScoringFast", "FastScorer",
                                           0.0005));
  orca::AppConfig accurate;
  accurate.id = "accurate";
  accurate.application_name = "ScoringAccurate";
  service.RegisterApplication(
      accurate, BuildVariant("ScoringAccurate", "AccurateScorer", 0.0015));

  // The policy, as §7-style rules: track nCorrect/nScored growth per
  // epoch; below 70% accuracy on the fast variant -> switch to accurate.
  auto rules = std::make_unique<orca::RuleOrchestrator>();
  struct SwitchState {
    int64_t correct = 0, scored = 0, prev_correct = 0, prev_scored = 0;
    int64_t correct_epoch = -1, scored_epoch = -2;
    bool switched = false;
  };
  auto state = std::make_shared<SwitchState>();
  rules->OnStart([](orca::OrcaContext& orca) {
    orca.SubmitApplication("fast");
    std::printf("[%6.1fs] deployed algorithm A (fast, cheap)\n",
                orca.Now());
  });
  orca::OperatorMetricScope accuracy("acc");
  accuracy.AddOperatorNameFilter("scorer");
  accuracy.AddOperatorMetric("nCorrect");
  accuracy.AddOperatorMetric("nScored");
  rules->WhenMetric(
      accuracy, nullptr,
      [state](orca::OrcaContext& orca,
              const orca::OperatorMetricContext& context) {
        if (state->switched) return;
        if (context.metric == "nCorrect") {
          state->correct = context.value;
          state->correct_epoch = context.epoch;
        } else {
          state->scored = context.value;
          state->scored_epoch = context.epoch;
        }
        if (state->correct_epoch != state->scored_epoch) return;
        int64_t d_correct = state->correct - state->prev_correct;
        int64_t d_scored = state->scored - state->prev_scored;
        state->prev_correct = state->correct;
        state->prev_scored = state->scored;
        if (d_scored < 20) return;
        double acc = static_cast<double>(d_correct) /
                     static_cast<double>(d_scored);
        std::printf("[%6.1fs] epoch %lld accuracy %.2f\n", orca.Now(),
                    static_cast<long long>(context.epoch), acc);
        if (acc < 0.70) {
          std::printf("[%6.1fs] low accuracy detected -> switching to "
                      "algorithm B (accurate, 3x cost)\n",
                      orca.Now());
          orca.CancelApplication("fast");
          orca.SubmitApplication("accurate");
          state->switched = true;
        }
      });
  service.Load(std::move(rules));

  sim.RunUntil(600);
  std::printf("\nfinal state: fast=%s accurate=%s (expected: switched)\n",
              service.IsRunning("fast") ? "running" : "stopped",
              service.IsRunning("accurate") ? "running" : "stopped");
  return 0;
}
