// §5.3 scenario: on-demand dynamic application composition.
//
// C1 readers (Twitter/MySpace) export profile streams; C2 query apps
// (Twitter/Blog/Facebook search) import them, enrich profiles with
// age/gender/location, and feed a shared data store. The orchestrator
// registers C2→C1 dependencies (C1 comes up automatically), spawns a C3
// aggregator whenever enough new profiles with an attribute accumulate,
// and cancels it when its final punctuation arrives — the application
// graph expands and contracts over time (Figure 10).

#include <cstdio>
#include <memory>

#include "apps/social_app.h"
#include "apps/social_orca.h"
#include "ops/standard.h"
#include "orca/orca_service.h"
#include "runtime/sam.h"
#include "runtime/srm.h"
#include "sim/simulation.h"

using namespace orcastream;  // NOLINT — example brevity

int main() {
  sim::Simulation sim;
  runtime::Srm srm(&sim);
  for (int i = 0; i < 6; ++i) srm.AddHost("host" + std::to_string(i));
  runtime::OperatorFactory factory;
  ops::RegisterStandardOperators(&factory);
  runtime::Sam sam(&sim, &srm, &factory);
  orca::OrcaService service(&sim, &sam, &srm);
  auto handles = apps::SocialApps::Register(&factory, &sim);

  auto register_app = [&](const std::string& id, const std::string& app_name,
                          common::Result<topology::ApplicationModel> model,
                          std::map<std::string, std::string> params = {}) {
    if (!model.ok()) {
      std::printf("model error: %s\n", model.status().ToString().c_str());
      exit(1);
    }
    orca::AppConfig config;
    config.id = id;
    config.application_name = app_name;
    config.parameters = std::move(params);
    config.garbage_collectable = true;
    config.gc_timeout_seconds = 20;
    service.RegisterApplication(config, *model);
  };

  apps::ProfileWorkload twitter{0.05, "twitter", 100000, 0.4};
  apps::ProfileWorkload myspace{0.1, "myspace", 50000, 0.4};
  register_app("c1_twitter", "TwitterStreamReader",
               apps::SocialApps::BuildReader("TwitterStreamReader", twitter,
                                             &factory));
  register_app("c1_myspace", "MySpaceStreamReader",
               apps::SocialApps::BuildReader("MySpaceStreamReader", myspace,
                                             &factory));
  register_app("c2_twitter", "TwitterQuery",
               apps::SocialApps::BuildQuery(
                   "TwitterQuery", {{"gender", 0.5}, {"location", 0.3}},
                   &factory, handles));
  register_app("c2_blog", "BlogQuery",
               apps::SocialApps::BuildQuery(
                   "BlogQuery", {{"age", 0.4}, {"location", 0.2}}, &factory,
                   handles));
  register_app("c2_facebook", "FacebookQuery",
               apps::SocialApps::BuildQuery(
                   "FacebookQuery",
                   {{"age", 0.3}, {"gender", 0.4}, {"location", 0.3}},
                   &factory, handles));
  for (const auto& attr : apps::SocialApps::Attributes()) {
    register_app("c3_" + attr, "AttributeAggregator_" + attr,
                 apps::SocialApps::BuildAggregator("AttributeAggregator_" +
                                                   attr),
                 {{"attribute", attr}});
  }

  apps::SocialOrca::Config orca_config;
  orca_config.profile_threshold = 300;
  auto logic_holder = std::make_unique<apps::SocialOrca>(orca_config);
  apps::SocialOrca* logic = logic_holder.get();
  service.Load(std::move(logic_holder));

  // Sample the number of running jobs over time.
  std::vector<std::pair<double, int>> samples;
  for (double t = 10; t <= 600; t += 10) {
    sim.RunUntil(t);
    int running = 0;
    for (const auto* job : sam.jobs()) {
      if (job->running) ++running;
    }
    samples.emplace_back(t, running);
  }

  std::printf("running jobs over time (C1+C2 = 5 baseline):\n");
  std::printf("%8s %8s\n", "time", "jobs");
  for (const auto& [t, jobs] : samples) {
    std::printf("%8.0f %8d\n", t, jobs);
  }
  std::printf("\ncomposition events:\n");
  for (const auto& event : logic->events()) {
    std::printf("  t=%7.1f  %-9s %s\n", event.at, event.what.c_str(),
                event.attribute.c_str());
  }
  std::printf("\nprofile store: %zu de-duplicated profiles; %zu correlation "
              "tuples produced\n",
              handles.store->size(), handles.correlations->size());
  return 0;
}
