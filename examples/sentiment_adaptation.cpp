// §5.1 scenario: adaptation to the incoming data distribution.
//
// A sentiment-analysis pipeline monitors iPhone complaints. At t=300 the
// tweet stream shifts to a new complaint ("antenna") the pre-computed model
// does not know. The orchestrator watches the correlator's custom metrics,
// triggers the (simulated) Hadoop model recomputation when the
// unknown/known ratio crosses 1.0, and the application reloads the model
// when the job finishes — Figure 8's trajectory, printed as a time series.

#include <cstdio>
#include <memory>

#include "apps/hadoop_sim.h"
#include "apps/sentiment_app.h"
#include "apps/sentiment_orca.h"
#include "ops/standard.h"
#include "orca/orca_service.h"
#include "runtime/sam.h"
#include "runtime/srm.h"
#include "sim/simulation.h"

using namespace orcastream;  // NOLINT — example brevity

int main() {
  sim::Simulation sim;
  runtime::Srm srm(&sim);
  for (int i = 0; i < 4; ++i) srm.AddHost("host" + std::to_string(i));
  runtime::OperatorFactory factory;
  ops::RegisterStandardOperators(&factory);
  runtime::Sam sam(&sim, &srm, &factory);

  // The tweet workload: antenna complaints burst at t=300.
  apps::TweetWorkload workload;
  workload.period = 0.05;
  workload.shift_time = 300;
  apps::CauseModel initial;
  initial.known_causes = {"flash", "screen"};
  auto handles = apps::SentimentApp::Register(&factory, "SentimentAnalysis",
                                              workload, initial);

  apps::HadoopSim hadoop(&sim, apps::HadoopSim::Config{90.0, 20});

  orca::OrcaService service(&sim, &sam, &srm);
  orca::AppConfig config;
  config.id = "sentiment";
  config.application_name = "SentimentAnalysis";
  auto model = apps::SentimentApp::Build("SentimentAnalysis");
  if (!model.ok()) return 1;
  service.RegisterApplication(config, *model);

  apps::SentimentOrca::Config orca_config;
  orca_config.threshold = 1.0;
  orca_config.retrigger_guard = 300;
  auto logic_holder = std::make_unique<apps::SentimentOrca>(
      orca_config, &hadoop, handles);
  apps::SentimentOrca* logic = logic_holder.get();
  service.Load(std::move(logic_holder));

  sim.RunUntil(700);

  std::printf("unknown/known cause ratio over time (threshold 1.0):\n");
  std::printf("%8s %8s %8s %8s\n", "epoch", "time", "ratio", "model");
  for (const auto& m : logic->measurements()) {
    std::printf("%8lld %8.1f %8.3f %8lld%s\n",
                static_cast<long long>(m.epoch), m.at, m.ratio,
                static_cast<long long>(m.model_version),
                m.ratio > 1.0 ? "   <-- above threshold" : "");
  }
  for (auto t : logic->trigger_times()) {
    std::printf("Hadoop job triggered at t=%.1f\n", t);
  }
  for (auto t : hadoop.completions()) {
    std::printf("Hadoop job completed at t=%.1f (model reloaded)\n", t);
  }
  std::printf("final model knows 'antenna': %s\n",
              handles.model->Get()->Knows("antenna") ? "yes" : "no");
  return 0;
}
