// Quickstart: the smallest complete orcastream program.
//
// It stands up a simulated cluster, defines a two-operator application, and
// attaches an orchestrator that (a) watches a built-in metric and (b) reacts
// to PE failures by restarting the PE — the "hello world" of user-defined
// runtime adaptation (VLDB'12).

#include <cstdio>
#include <memory>

#include "ops/standard.h"
#include "orca/orca_service.h"
#include "orca/orchestrator.h"
#include "runtime/failure_injector.h"
#include "runtime/sam.h"
#include "runtime/srm.h"
#include "sim/simulation.h"
#include "topology/app_builder.h"

using namespace orcastream;  // NOLINT — example brevity

namespace {

/// The ORCA logic: register scopes on start, restart crashed PEs, and log
/// throughput metric events.
class QuickstartOrca : public orca::Orchestrator {
 public:
  void HandleOrcaStart(orca::OrcaContext& orca,
                       const orca::OrcaStartContext& context) override {
    std::printf("[%6.1fs] orchestrator started\n", context.at);

    orca::OperatorMetricScope metrics("throughput");
    metrics.AddOperatorNameFilter("source");
    metrics.AddOperatorMetric(orca::BuiltinMetric::kNumTuplesSubmitted);
    orca.RegisterEventScope(metrics);

    orca::PeFailureScope failures("failures");
    failures.AddApplicationFilter("QuickstartApp");
    orca.RegisterEventScope(failures);

    orca.SetMetricPullPeriod(15.0);
    orca.SubmitApplication("quickstart");
  }

  void HandleOperatorMetricEvent(orca::OrcaContext&,
                                 const orca::OperatorMetricContext& context,
                                 const std::vector<std::string>&) override {
    std::printf("[%6.1fs] epoch %lld: %s.%s = %lld\n", context.collected_at,
                static_cast<long long>(context.epoch),
                context.instance_name.c_str(), context.metric.c_str(),
                static_cast<long long>(context.value));
  }

  void HandlePeFailureEvent(orca::OrcaContext& orca,
                            const orca::PeFailureContext& context,
                            const std::vector<std::string>&) override {
    std::printf("[%6.1fs] PE %lld failed (%s) — restarting\n",
                orca.Now(), static_cast<long long>(context.pe.value()),
                context.reason.c_str());
    orca.RestartPe(context.pe);
  }
};

}  // namespace

int main() {
  // 1. A simulated three-host cluster with the System S daemons.
  sim::Simulation sim;
  runtime::Srm srm(&sim);
  for (int i = 0; i < 3; ++i) srm.AddHost("host" + std::to_string(i));
  runtime::OperatorFactory factory;
  ops::RegisterStandardOperators(&factory);
  runtime::Sam sam(&sim, &srm, &factory);

  // 2. A tiny application: Beacon source -> sink.
  topology::AppBuilder builder("QuickstartApp");
  builder.AddOperator("source", "Beacon").Output("data").Param("period", 0.1);
  builder.AddOperator("sink", "NullSink").Input("data");
  auto model = builder.Build();
  if (!model.ok()) {
    std::printf("model error: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // 3. The orchestrator: register the app, load the logic.
  orca::OrcaService service(&sim, &sam, &srm);
  orca::AppConfig config;
  config.id = "quickstart";
  config.application_name = "QuickstartApp";
  service.RegisterApplication(config, *model);
  service.Load(std::make_unique<QuickstartOrca>());

  // 4. Inject a PE failure at t=40 and run for 60 virtual seconds.
  runtime::FailureInjector injector(&sim, &sam);
  sim.RunUntil(1);
  auto job = service.RunningJob("quickstart");
  if (job.ok()) {
    injector.KillPeOfOperatorAt(40, job.value(), "source", "demo crash");
  }
  sim.RunUntil(60);

  std::printf("done: %llu events delivered by the ORCA service\n",
              static_cast<unsigned long long>(service.events_delivered()));
  return 0;
}
