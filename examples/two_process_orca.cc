// Two-process ORCA: the iot_fleet soak scenario with its detection plane
// behind a REAL kernel socketpair (AF_UNIX) instead of a function call.
//
// The runtime side (SAM failure notifications, the metric pump) writes
// framed, CRC-protected, sequence-numbered events into one end of the
// socketpair; the control-plane side reads them out of the other end and
// applies them to the ORCA service exactly once. This is the §3 process
// separation the paper describes — SPC daemons and the ORCA controller
// are separate OS processes — collapsed onto one process here only so the
// whole run stays on the simulation clock (the transport itself is the
// same nonblocking-socket stack a genuine two-process split would use,
// and examples/README has the recipe for splitting it).
//
// The demo proves the seam is lossless: the same scenario is run once
// in-process (the oracle) and once over the socketpair, and the
// per-application §7 transaction journals must come out byte-identical.
// Exits nonzero if they do not.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/scenario.h"
#include "harness/scenarios.h"
#include "harness/soak_driver.h"
#include "net/socket_channel.h"

using namespace orcastream;  // NOLINT — example brevity

namespace {

std::vector<std::string> Flatten(
    const std::map<std::string, std::vector<std::string>>& journal) {
  std::vector<std::string> lines;
  for (const auto& [app, entries] : journal) {
    for (const std::string& entry : entries) {
      lines.push_back(app + ": " + entry);
    }
  }
  return lines;
}

}  // namespace

int main() {
  harness::ScenarioOptions oracle_options;
  oracle_options.mode = harness::DispatchMode::kSerial;

  std::printf("== in-process oracle run (iot_fleet) ==\n");
  harness::RunResult oracle;
  {
    auto scenario = harness::MakeIotFleetScenario();
    oracle = harness::RunScenario(*scenario, oracle_options);
  }
  if (!oracle.verify.ok()) {
    std::printf("oracle invariants FAILED: %s\n",
                oracle.verify.ToString().c_str());
    return 1;
  }
  std::printf("   %llu events delivered, %zu journal lanes\n",
              static_cast<unsigned long long>(oracle.events_delivered),
              oracle.journal.size());

  std::printf("== socketpair run (detection plane over AF_UNIX) ==\n");
  harness::ScenarioOptions remote_options = oracle_options;
  remote_options.remote_event_plane = true;
  // Over a kernel socket there is no inline delivery: events apply on the
  // next pump tick. A tight pump keeps the added detection latency far
  // below the scenario's event spacing, so per-lane ordering (the §7
  // guarantee) is unaffected.
  remote_options.remote_pump_interval = 0.005;
  int pairs_made = 0;
  remote_options.remote_make_pair =
      [&pairs_made]() -> std::pair<std::unique_ptr<net::Channel>,
                                   std::unique_ptr<net::Channel>> {
    auto pair = net::SocketChannel::CreatePair();
    if (!pair.ok()) {
      std::printf("socketpair failed: %s\n", pair.status().ToString().c_str());
      return {nullptr, nullptr};
    }
    ++pairs_made;
    return {std::move(pair->first), std::move(pair->second)};
  };

  harness::RunResult remote;
  {
    auto scenario = harness::MakeIotFleetScenario();
    remote = harness::RunScenario(*scenario, remote_options);
  }
  if (!remote.verify.ok()) {
    std::printf("remote invariants FAILED: %s\n",
                remote.verify.ToString().c_str());
    return 1;
  }
  std::printf("   %llu events delivered over %d socketpair connection%s\n",
              static_cast<unsigned long long>(remote.events_delivered),
              pairs_made, pairs_made == 1 ? "" : "s");

  std::printf("== comparing §7 journals ==\n");
  std::vector<std::string> oracle_lines = Flatten(oracle.journal);
  std::vector<std::string> remote_lines = Flatten(remote.journal);
  if (remote.events_delivered != oracle.events_delivered) {
    std::printf("event count mismatch: oracle %llu, socket %llu\n",
                static_cast<unsigned long long>(oracle.events_delivered),
                static_cast<unsigned long long>(remote.events_delivered));
    return 1;
  }
  if (remote_lines != oracle_lines) {
    size_t n = std::min(oracle_lines.size(), remote_lines.size());
    for (size_t i = 0; i < n; ++i) {
      if (oracle_lines[i] != remote_lines[i]) {
        std::printf("journal diverges at line %zu:\n  oracle: %s\n  socket: %s\n",
                    i, oracle_lines[i].c_str(), remote_lines[i].c_str());
        break;
      }
    }
    std::printf("journal mismatch: oracle %zu lines, socket %zu lines\n",
                oracle_lines.size(), remote_lines.size());
    return 1;
  }
  std::printf("   %zu journal lines byte-identical across the socket\n",
              oracle_lines.size());
  std::printf("OK\n");
  return 0;
}
