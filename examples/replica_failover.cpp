// §5.2 scenario: adaptation to failures.
//
// Three replicas of the "Trend Calculator" (600 s sliding windows of
// min/max/avg/Bollinger bands, compressed here to 120 s) run on exclusive
// hosts, all consuming the same market feed. At t=200 we kill a PE of the
// active replica: the orchestrator promotes the oldest healthy replica,
// updates the status file, and restarts the failed PE — which then produces
// under-filled windows until its history refills (Figure 9's dashed box).

#include <cstdio>
#include <memory>

#include "apps/trend_app.h"
#include "apps/trend_orca.h"
#include "ops/standard.h"
#include "orca/orca_service.h"
#include "runtime/failure_injector.h"
#include "runtime/sam.h"
#include "runtime/srm.h"
#include "sim/simulation.h"

using namespace orcastream;  // NOLINT — example brevity

int main() {
  constexpr double kWindow = 120;
  constexpr double kCrashTime = 200;

  sim::Simulation sim;
  runtime::Srm srm(&sim);
  for (int i = 0; i < 8; ++i) srm.AddHost("host" + std::to_string(i));
  runtime::OperatorFactory factory;
  ops::RegisterStandardOperators(&factory);
  runtime::Sam sam(&sim, &srm, &factory);
  orca::OrcaService service(&sim, &sam, &srm);

  apps::StockWorkload workload;
  workload.period = 0.5;
  workload.symbols = {"IBM"};

  apps::TrendOrca::Config orca_config;
  std::map<std::string, apps::TrendApp::Handles> handles;
  for (const auto& replica : orca_config.replica_ids) {
    std::string app_name = "TrendCalculator_" + replica;
    handles[replica] = apps::TrendApp::Register(&factory, app_name, workload);
    auto model = apps::TrendApp::Build(app_name, kWindow, 10.0);
    if (!model.ok()) return 1;
    orca::AppConfig config;
    config.id = replica;
    config.application_name = app_name;
    config.parameters["replica"] = replica;
    service.RegisterApplication(config, *model);
  }
  auto logic_holder = std::make_unique<apps::TrendOrca>(orca_config);
  apps::TrendOrca* logic = logic_holder.get();
  service.Load(std::move(logic_holder));

  runtime::FailureInjector injector(&sim, &sam);
  sim.RunUntil(5);
  auto job = service.RunningJob("replica0");
  if (job.ok()) {
    auto pe =
        sam.FindJob(job.value())->PeOfOperator(apps::TrendApp::kAggregateName);
    if (pe.ok()) {
      injector.KillPeAt(kCrashTime, pe.value(), "killed active replica PE");
    }
  }
  sim.RunUntil(400);

  std::printf("replica status after the run:\n");
  for (const auto& [replica, status] : logic->status_board()) {
    std::printf("  %-9s %s\n", replica.c_str(), status.c_str());
  }
  for (const auto& failover : logic->failovers()) {
    std::printf(
        "failover at t=%.1f: %s failed (%s replica), new active: %s\n",
        failover.at, failover.failed_replica.c_str(),
        failover.active_failed ? "active" : "backup",
        failover.new_active.c_str());
  }

  std::printf("\nwindow fill per replica (windowCount; full ≈ %d):\n",
              static_cast<int>(kWindow / workload.period));
  std::printf("%8s %10s %10s %10s\n", "time", "replica0", "replica1",
              "replica2");
  // Sample each replica's output every 50 s.
  for (double t = 50; t <= 400; t += 50) {
    std::printf("%8.0f", t);
    for (const auto& replica : orca_config.replica_ids) {
      const auto& out = (*handles[replica].outputs)[replica];
      long long count = -1;
      for (const auto& point : out) {
        if (point.at <= t) count = point.window_count;
      }
      std::printf(" %10lld", count);
    }
    std::printf("\n");
  }
  std::printf(
      "\nnote the active replica's full windows throughout, and replica0's\n"
      "refill after its t=%.0f restart — the Figure 9 behaviour.\n",
      kCrashTime);
  return 0;
}
