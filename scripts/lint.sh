#!/usr/bin/env bash
# One-shot local runner for every static check, exactly as CI's docs/lint
# job runs them (see .github/workflows/ci.yml). Usage: scripts/lint.sh
#
# The clang-based checks (-Wthread-safety build, clang-tidy) need a clang
# toolchain and a compile_commands.json; they run when available and are
# skipped with a notice otherwise, so this script is useful on gcc-only
# boxes too.
set -u
cd "$(dirname "$0")/.."

failures=0
run() {
  echo "== $*"
  if ! "$@"; then
    failures=$((failures + 1))
  fi
}

run python3 scripts/orca_lint.py --self-test
run python3 scripts/orca_lint.py
run python3 scripts/check_orca_api.py
run python3 scripts/check_docs_links.py

if command -v clang++ >/dev/null 2>&1; then
  # Mirrors CI's thread-safety job: the whole tree must compile clean
  # under the analysis, and the deliberate violation file must NOT.
  run env CXX=clang++ cmake -B build-tsa -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety"
  run cmake --build build-tsa -j"$(nproc)"
  echo "== negative check: tests/static/thread_safety_violation.cc must fail"
  if clang++ -std=c++17 -Isrc -Wthread-safety -Werror=thread-safety \
      -fsyntax-only tests/static/thread_safety_violation.cc 2>/dev/null; then
    echo "ERROR: deliberate thread-safety violation compiled clean" >&2
    failures=$((failures + 1))
  else
    echo "OK (violation rejected)"
  fi
else
  echo "-- clang++ not found: skipping -Wthread-safety build (CI runs it)"
fi

if command -v clang-tidy >/dev/null 2>&1 && [ -f build-tsa/compile_commands.json ]; then
  run bash -c 'git ls-files "src/**/*.cc" | xargs clang-tidy -p build-tsa --quiet'
else
  echo "-- clang-tidy or compile_commands.json not found: skipping (CI runs it)"
fi

if [ "$failures" -ne 0 ]; then
  echo "lint.sh: $failures check(s) failed" >&2
  exit 1
fi
echo "lint.sh: all checks passed"
