#!/usr/bin/env python3
"""Gate against the retired `orca()` service backdoor creeping back.

PR 5 replaced the protected `Orchestrator::orca()` raw service pointer
with the per-delivery OrcaContext capability object (src/orca/
orca_context.h): handlers receive the context by reference, its calls
are immediate on the serial/DeterministicExecutor paths and staged on
ThreadPoolExecutor worker threads. A raw `orca()->...` call would bypass
that routing and race the simulation thread under async dispatch, so no
such call site may exist anywhere in the tree — there is deliberately no
deprecation shim.

Scans every tracked file under src/, tests/, bench/, examples/, and
docs/ (plus root-level markdown) for `orca()->` and exits non-zero
listing the offenders. The broader per-rule invariant lint lives in
orca_lint.py; this check predates it and stays standalone because it
also covers documentation prose.
"""

import re
import sys

import lint_common

BACKDOOR = re.compile(r"orca\(\)\s*->")

SCANNED_PREFIXES = ("src/", "tests/", "bench/", "examples/", "docs/")


def scanned_files():
    # ISSUE.md / CHANGES.md are the driver's task log; they describe
    # this gate and the retirement itself.
    yield from lint_common.tracked_files(
        prefixes=SCANNED_PREFIXES, exclude=("ISSUE.md", "CHANGES.md"))
    for path in lint_common.tracked_files(suffixes=(".md",),
                                          exclude=("ISSUE.md", "CHANGES.md")):
        if "/" not in str(path.relative_to(lint_common.REPO_ROOT)):
            yield path


def main():
    offenders = []
    for path in scanned_files():
        text = lint_common.read_text(path)
        if text is None:
            continue
        # Search the whole text, not per line: `orca()\n    ->Call()` is
        # the standard continuation style at the column limit and must
        # not slip past the gate.
        for match in BACKDOOR.finditer(text):
            rel = path.relative_to(lint_common.REPO_ROOT)
            offenders.append(
                f"{rel}:{lint_common.line_of(text, match.start())}: "
                f"{lint_common.line_at(text, match.start())}")
    return lint_common.report(
        "orca() backdoor check", offenders, "no call sites",
        "retired `orca()->` call site(s) — use the handler's OrcaContext "
        "instead")


if __name__ == "__main__":
    sys.exit(main())
