#!/usr/bin/env python3
"""Gate against the retired `orca()` service backdoor creeping back.

PR 5 replaced the protected `Orchestrator::orca()` raw service pointer
with the per-delivery OrcaContext capability object (src/orca/
orca_context.h): handlers receive the context by reference, its calls
are immediate on the serial/DeterministicExecutor paths and staged on
ThreadPoolExecutor worker threads. A raw `orca()->...` call would bypass
that routing and race the simulation thread under async dispatch, so no
such call site may exist anywhere in the tree — there is deliberately no
deprecation shim.

Scans every tracked file under src/, tests/, bench/, examples/, and
docs/ (plus root-level markdown) for `orca()->` and exits non-zero
listing the offenders.
"""

import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

BACKDOOR = re.compile(r"orca\(\)\s*->")

SCANNED_PREFIXES = ("src/", "tests/", "bench/", "examples/", "docs/")


def tracked_files():
    out = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT, check=True, capture_output=True, text=True,
    ).stdout
    for line in out.splitlines():
        # ISSUE.md / CHANGES.md are the driver's task log; they describe
        # this gate and the retirement itself.
        if line in ("ISSUE.md", "CHANGES.md"):
            continue
        if line.startswith(SCANNED_PREFIXES) or (
            "/" not in line and line.endswith(".md")
        ):
            yield REPO_ROOT / line


def main():
    offenders = []
    for path in tracked_files():
        try:
            text = path.read_text(encoding="utf-8")
        except UnicodeDecodeError:
            continue
        # Search the whole text, not per line: `orca()\n    ->Call()` is
        # the standard continuation style at the column limit and must
        # not slip past the gate.
        for match in BACKDOOR.finditer(text):
            number = text.count("\n", 0, match.start()) + 1
            line = text.splitlines()[number - 1]
            offenders.append(f"{path.relative_to(REPO_ROOT)}:{number}: "
                             f"{line.strip()}")
    if offenders:
        print(f"{len(offenders)} retired `orca()->` call site(s) — use the "
              "handler's OrcaContext instead:", file=sys.stderr)
        for offender in offenders:
            print(f"  {offender}", file=sys.stderr)
        return 1
    print("orca() backdoor check OK (no call sites)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
