#!/usr/bin/env python3
"""orca_lint: the project's determinism & concurrency invariant pass.

The simulation kernel is single-threaded and virtual-time; every source
of nondeterminism the runtime is allowed to touch is funneled through
two seams — the sim clock (`sim::Simulation::Now`) plus the
DispatchExecutor's `NowSeconds`, and the seeded `common::Rng`. Locks go
through the annotated wrappers in src/common/mutex.h so clang's
-Wthread-safety pass (CI) sees every critical section. This lint keeps
those funnels the ONLY openings, AST-free (regex over comment/string-
stripped source, like check_orca_api.py), with an explicit allowlist:

  wall_clock         no steady_clock/system_clock/... reads; wall time
                     enters through ThreadPoolExecutor's single clock
                     function.
  randomness         no rand()/random_device/raw mt19937; randomness is
                     the seeded common::Rng.
  raw_thread         no std::thread outside the two sanctioned pools
                     (ThreadPoolExecutor workers, ShardedScopeRegistry
                     batch matchers).
  thread_detach      no .detach() anywhere — every thread is joined.
  sleep              no sleep_for/sleep_until/usleep/...; waiting is a
                     CondVar timed wait or a sim event.
  raw_mutex          no std::mutex/condition_variable/lock_guard/...
                     outside src/common/mutex.h — unannotated locks are
                     invisible to the thread safety analysis.
  raw_socket         no raw socket/fd APIs (socket headers, socketpair,
                     AF_*/SOCK_* constants, poll) outside
                     src/net/socket_channel.cc — everything above speaks
                     the net::Channel interface.
  service_in_handler no Orchestrator subclass body naming OrcaService:
                     handlers act through their per-delivery
                     OrcaContext (the generalization of the
                     check_orca_api.py `orca()->` gate).

Scope: tracked C++ files under src/, tests/, and examples/. bench/ is
exempt wholesale (benchmarks legitimately time and sleep) except for
service_in_handler, which also covers bench orchestrators.

Allowlist: scripts/orca_lint_allowlist.txt, one entry per line —

    <repo-relative-path> <rule> [max=N]   # comment

An entry waives the rule for that file; `max=N` caps the match count so
the waiver cannot silently widen (e.g. the wall-clock seam is pinned to
exactly one read). Unused entries are errors: the allowlist can never
outlive the code it excuses.

`--self-test` embeds a deliberate violation of every rule and asserts
the lint catches it — CI runs it so a regressed rule fails loudly.
"""

import argparse
import pathlib
import re
import sys

import lint_common

ALLOWLIST_PATH = lint_common.REPO_ROOT / "scripts" / "orca_lint_allowlist.txt"

CODE_SUFFIXES = (".cc", ".h", ".cpp", ".hpp")
CODE_PREFIXES = ("src/", "tests/", "examples/")

# name -> (pattern, guidance). Patterns run on comment/string-stripped
# source, so prose mentioning e.g. steady_clock never fires.
PATTERN_RULES = {
    "wall_clock": (
        re.compile(
            r"steady_clock|system_clock|high_resolution_clock"
            r"|\bgettimeofday\b|\bclock_gettime\b"
            r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"),
        "wall-clock read — time comes from the sim clock or the "
        "executor's NowSeconds()"),
    "randomness": (
        re.compile(
            r"\brandom_device\b|\bmt19937(?:_64)?\b"
            r"|(?<![\w:])s?rand\s*\("),
        "unseeded randomness — use the seeded common::Rng"),
    "raw_thread": (
        re.compile(r"\bstd\s*::\s*thread\b"),
        "raw std::thread — threads live in ThreadPoolExecutor or the "
        "sharded registry's batch matcher"),
    "thread_detach": (
        re.compile(r"\.\s*detach\s*\(\s*\)"),
        "detached thread — every thread must be joined"),
    "sleep": (
        re.compile(
            r"\bsleep_for\b|\bsleep_until\b"
            r"|(?<![\w:])(?:u|nano)?sleep\s*\("),
        "blocking sleep — wait on a CondVar deadline or a sim event"),
    "raw_mutex": (
        re.compile(
            r"\bstd\s*::\s*(?:recursive_|shared_|timed_)*mutex\b"
            r"|\bstd\s*::\s*condition_variable(?:_any)?\b"
            r"|\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|"
            r"shared_lock)\b"
            r"|\bpthread_(?:mutex|cond|rwlock)\b"),
        "raw mutex/lock primitive — use common::Mutex / MutexLock / "
        "CondVar so -Wthread-safety sees the critical section"),
    "raw_socket": (
        re.compile(
            r"<sys/socket\.h>|<sys/un\.h>|<netinet/[^>]+>|<arpa/inet\.h>"
            r"|<poll\.h>|<fcntl\.h>"
            r"|\bsocketpair\s*\(|\bsetsockopt\s*\("
            r"|(?<![\w:])socket\s*\(|(?<![\w:])poll\s*\("
            r"|\bAF_(?:INET6?|UNIX)\b|\bSOCK_STREAM\b|\bMSG_NOSIGNAL\b"),
        "raw socket/fd API — OS sockets live behind src/net/"
        "socket_channel.cc; everything else speaks the net::Channel "
        "interface"),
}

# An Orchestrator subclass: `class X : public [ns::]SomethingOrchestrator`
# (covers indirect bases like RuleOrchestrator by suffix).
ORCH_SUBCLASS = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*public\s+(?:[\w:]+::)?"
    r"(\w*Orchestrator)\b")
SERVICE_TOKEN = re.compile(r"\bOrcaService\b")


def class_body_span(text, brace_start):
    """(start, end) offsets of the brace-matched body opening at
    `brace_start` (which must index a '{'), or None if unbalanced."""
    depth = 0
    for i in range(brace_start, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return brace_start, i + 1
    return None


def load_allowlist():
    """{(path, rule): max_count or None}; max None = any count."""
    entries = {}
    for raw in lint_common.read_text(ALLOWLIST_PATH).splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) not in (2, 3):
            raise SystemExit(f"orca_lint: bad allowlist line: {raw!r}")
        path, rule = parts[0], parts[1]
        if rule not in PATTERN_RULES and rule != "service_in_handler":
            raise SystemExit(f"orca_lint: unknown rule in allowlist: {raw!r}")
        cap = None
        if len(parts) == 3:
            if not parts[2].startswith("max="):
                raise SystemExit(f"orca_lint: bad allowlist cap: {raw!r}")
            cap = int(parts[2][4:])
        entries[(path, rule)] = cap
    return entries


def pattern_offenders(rel, text, allowlist, used):
    """Runs every pattern rule over one stripped file."""
    offenders = []
    for rule, (pattern, guidance) in PATTERN_RULES.items():
        matches = list(pattern.finditer(text))
        if not matches:
            continue
        key = (str(rel), rule)
        if key in allowlist:
            used.add(key)
            cap = allowlist[key]
            if cap is None or len(matches) <= cap:
                continue
            offenders.append(
                f"{rel}: [{rule}] {len(matches)} matches exceed the "
                f"allowlisted max={cap} — the waived surface widened")
            continue
        for match in matches:
            offenders.append(
                f"{rel}:{lint_common.line_of(text, match.start())}: "
                f"[{rule}] {lint_common.line_at(text, match.start())}"
                f" — {guidance}")
    return offenders


def handler_offenders(rel, text, allowlist=None, used=None):
    """service_in_handler: no Orchestrator subclass body names
    OrcaService — handlers act through their per-delivery OrcaContext."""
    hits = []
    for match in ORCH_SUBCLASS.finditer(text):
        brace = text.find("{", match.end())
        if brace == -1:
            continue
        span = class_body_span(text, brace)
        if span is None:
            continue
        body = text[span[0]:span[1]]
        for hit in SERVICE_TOKEN.finditer(body):
            offset = span[0] + hit.start()
            hits.append(
                f"{rel}:{lint_common.line_of(text, offset)}: "
                f"[service_in_handler] orchestrator `{match.group(1)}` "
                f"names OrcaService — handlers must act through their "
                f"OrcaContext")
    key = (str(rel), "service_in_handler")
    if hits and allowlist is not None and key in allowlist:
        used.add(key)
        cap = allowlist[key]
        if cap is None or len(hits) <= cap:
            return []
        return [f"{rel}: [service_in_handler] {len(hits)} matches exceed "
                f"the allowlisted max={cap} — the waived surface widened"]
    return hits


def run_lint():
    allowlist = load_allowlist()
    used = set()
    offenders = []
    scanned = 0

    for path in lint_common.tracked_files(prefixes=CODE_PREFIXES,
                                          suffixes=CODE_SUFFIXES):
        raw = lint_common.read_text(path)
        if raw is None:
            continue
        rel = path.relative_to(lint_common.REPO_ROOT)
        text = lint_common.strip_code_comments(raw)
        scanned += 1
        offenders.extend(pattern_offenders(rel, text, allowlist, used))
        offenders.extend(handler_offenders(rel, text, allowlist, used))

    # bench/ is exempt from the determinism rules but not from the
    # handler rule: a benchmark orchestrator reaching into the service
    # races exactly like a production one.
    for path in lint_common.tracked_files(prefixes=("bench/",),
                                          suffixes=CODE_SUFFIXES):
        raw = lint_common.read_text(path)
        if raw is None:
            continue
        rel = path.relative_to(lint_common.REPO_ROOT)
        scanned += 1
        offenders.extend(
            handler_offenders(rel, lint_common.strip_code_comments(raw),
                              allowlist, used))

    for key in sorted(set(allowlist) - used):
        offenders.append(
            f"scripts/orca_lint_allowlist.txt: stale entry "
            f"`{key[0]} {key[1]}` — the file no longer matches the rule")

    return lint_common.report(
        "orca_lint", offenders, f"{scanned} files, {len(PATTERN_RULES) + 1} "
        "rules", "invariant violation(s)")


# --- self-test ---------------------------------------------------------------

# One deliberate violation per rule class; CI runs --self-test so a
# regressed pattern fails loudly rather than silently passing the tree.
SELF_TEST_VIOLATIONS = {
    "wall_clock": "auto t0 = std::chrono::steady_clock::now();",
    "randomness": "std::random_device rd; int x = rand();",
    "raw_thread": "std::thread worker([] {});",
    "thread_detach": "worker.detach();",
    "sleep": "std::this_thread::sleep_for(std::chrono::seconds(1));",
    "raw_mutex": "std::mutex mu; std::lock_guard<std::mutex> lock(mu);",
    "raw_socket": "int fd = socket(AF_UNIX, SOCK_STREAM, 0);",
}

SELF_TEST_HANDLER = """
class SneakyOrca : public Orchestrator {
 public:
  void HandleOrcaStart(OrcaContext& orca, const OrcaStartContext& c) {
    OrcaService* backdoor = FindServiceSomehow();
    backdoor->Shutdown();
  }
};
"""

SELF_TEST_CLEAN = """
// steady_clock mentioned in a comment must NOT fire, nor "rand()" here.
const char* doc = "std::mutex in a string literal is also fine";
common::MutexLock lock(mu_);
double now = executor_->NowSeconds();
"""


def run_self_test():
    failures = []
    for rule, snippet in SELF_TEST_VIOLATIONS.items():
        stripped = lint_common.strip_code_comments(snippet)
        if not PATTERN_RULES[rule][0].search(stripped):
            failures.append(f"rule {rule} missed: {snippet!r}")
    hits = handler_offenders(pathlib.PurePosixPath("self_test.cc"),
                             lint_common.strip_code_comments(
                                 SELF_TEST_HANDLER))
    if not hits:
        failures.append("rule service_in_handler missed the sneaky "
                        "orchestrator")
    clean = lint_common.strip_code_comments(SELF_TEST_CLEAN)
    for rule, (pattern, _) in PATTERN_RULES.items():
        match = pattern.search(clean)
        if match:
            failures.append(
                f"rule {rule} false-positive on clean snippet: "
                f"{match.group(0)!r}")
    return lint_common.report(
        "orca_lint --self-test", failures,
        f"{len(SELF_TEST_VIOLATIONS) + 1} rules trip on violations, clean "
        "code passes", "self-test failure(s)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule catches its violation class")
    args = parser.parse_args()
    return run_self_test() if args.self_test else run_lint()


if __name__ == "__main__":
    sys.exit(main())
