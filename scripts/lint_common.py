"""Shared scaffolding for the repo's static checks.

Every checker in scripts/ has the same outer shape: enumerate tracked
files with `git ls-files`, scan some subset, collect "path:line: ..."
offender strings, print them to stderr with a headline and exit
non-zero (or print an OK line and exit zero). This module owns that
shape so the checkers themselves are just their rules:

  - tracked_files()  — tracked paths, optionally filtered by prefix /
                       suffix, as absolute pathlib.Paths.
  - read_text()      — file contents, or None for binary/undecodable.
  - line_of()        — 1-based line number of a character offset.
  - line_at()        — the stripped source line containing an offset.
  - strip_code_comments() — blank out // and /* */ comments and string
                       literals in C/C++ source so pattern rules do not
                       fire on prose (layout/offsets are preserved).
  - report()         — uniform offender reporting; returns the exit code.

Used by check_orca_api.py, check_docs_links.py, and orca_lint.py;
scripts/lint.sh runs them all exactly as CI does.
"""

import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def tracked_files(prefixes=None, suffixes=None, exclude=()):
    """Tracked repo paths as absolute Paths.

    `prefixes`/`suffixes` filter on the repo-relative string form; None
    means no constraint. A repo-relative path listed in `exclude` is
    always skipped. Root-level files have no '/' in their relative path,
    so a prefix filter like ("src/",) naturally excludes them.
    """
    out = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT, check=True, capture_output=True, text=True,
    ).stdout
    for line in out.splitlines():
        if not line or line in exclude:
            continue
        if prefixes is not None and not line.startswith(tuple(prefixes)):
            continue
        if suffixes is not None and not line.endswith(tuple(suffixes)):
            continue
        yield REPO_ROOT / line


def read_text(path):
    """File contents, or None when the file is not UTF-8 text."""
    try:
        return path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return None


def line_of(text, offset):
    """1-based line number of character `offset` in `text`."""
    return text.count("\n", 0, offset) + 1


def line_at(text, offset):
    """The stripped source line containing character `offset`."""
    start = text.rfind("\n", 0, offset) + 1
    end = text.find("\n", offset)
    if end == -1:
        end = len(text)
    return text[start:end].strip()


_CODE_NOISE = re.compile(
    r"""
      //[^\n]*                      # line comment
    | /\*.*?\*/                     # block comment
    | "(?:\\.|[^"\\\n])*"           # string literal
    | '(?:\\.|[^'\\\n])*'           # char literal
    """,
    re.DOTALL | re.VERBOSE,
)


def strip_code_comments(text):
    """Blanks comments and string/char literals in C/C++ source.

    Every masked character becomes a space except newlines, which are
    kept — so match offsets and line numbers computed against the
    stripped text are valid against the original.
    """
    def blank(match):
        return "".join(c if c == "\n" else " " for c in match.group(0))

    return _CODE_NOISE.sub(blank, text)


def report(name, offenders, ok_message, headline):
    """Prints the uniform pass/fail report; returns the process exit code.

    `offenders` is a list of preformatted "path:line: detail" strings.
    """
    if offenders:
        print(f"{len(offenders)} {headline}:", file=sys.stderr)
        for offender in offenders:
            print(f"  {offender}", file=sys.stderr)
        return 1
    print(f"{name} OK ({ok_message})")
    return 0
