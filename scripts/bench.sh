#!/usr/bin/env bash
# Runs the event-routing benchmarks and emits BENCH_event_routing.json at
# the repo root — the perf trajectory record for the EventBus +
# ScopeRegistry delivery pipeline (see ARCHITECTURE.md).
#
# Usage: scripts/bench.sh [build-dir]   (default: build)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build}"

if [[ ! -x "$BUILD_DIR/bench_scope_matching" ]]; then
  echo "building benches in $BUILD_DIR ..." >&2
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j --target bench_scope_matching bench_event_delivery
fi

SCOPE_JSON="$BUILD_DIR/bench_scope_matching.json"
DELIVERY_JSON="$BUILD_DIR/bench_event_delivery.json"

"$BUILD_DIR/bench_scope_matching" \
  --benchmark_filter='Registry|Sharded' \
  --benchmark_format=json >"$SCOPE_JSON"
"$BUILD_DIR/bench_event_delivery" \
  --benchmark_filter='BM_UserEventBurstDispatch|BM_EventBusRawDispatch|BM_MultiAppDelivery' \
  --benchmark_format=json >"$DELIVERY_JSON"

python3 - "$SCOPE_JSON" "$DELIVERY_JSON" "$REPO_ROOT/BENCH_event_routing.json" <<'EOF'
import json
import sys

scope_path, delivery_path, out_path = sys.argv[1:4]

def load(path):
    with open(path) as f:
        return json.load(f)["benchmarks"]

def items_per_second(benches, name):
    for bench in benches:
        if bench["name"] == name:
            return bench.get("items_per_second")
    return None

scope = load(scope_path)
delivery = load(delivery_path)

indexed = items_per_second(scope, "BM_RegistryIndexed/1000/10000")
linear = items_per_second(scope, "BM_RegistryLinearScan/1000/10000")
churn_indexed = items_per_second(scope, "BM_RegistryChurnIndexed/1000/10000")
churn_linear = items_per_second(scope, "BM_RegistryChurnLinear/1000/10000")
sharded = {
    n: items_per_second(scope, f"BM_ShardedSnapshot/{n}/1000/10000/real_time")
    for n in (1, 2, 4, 8)
}
sharded_linear = items_per_second(scope, "BM_ShardedSnapshotLinear/1000/10000")

result = {
    "bench": "event_routing",
    "description": "ScopeRegistry indexed routing vs preserved linear-scan "
                   "reference at 1k subscopes x 10k samples (static and "
                   "register/match/unregister churn workloads), "
                   "ShardedScopeRegistry multi-app SRM rounds at 1/2/4/8 "
                   "shards, plus EventBus dispatch throughput (events/s)",
    "scope_matching": {
        "indexed_items_per_second": indexed,
        "linear_items_per_second": linear,
        "speedup": (indexed / linear) if indexed and linear else None,
        "required_speedup": 5.0,
    },
    "scope_matching_churn": {
        "indexed_items_per_second": churn_indexed,
        "linear_items_per_second": churn_linear,
        "speedup": (churn_indexed / churn_linear)
                   if churn_indexed and churn_linear else None,
        "required_speedup": 5.0,
    },
    # One whole multi-app SRM round (8 apps, 1k subscopes x 10k samples)
    # matched shard-parallel through ShardedScopeRegistry, vs the linear
    # scan over the same subscope population. The 4-shard case is gated.
    "scope_matching_sharded": {
        "sharded_items_per_second": {
            f"shards_{n}": value for n, value in sharded.items()
        },
        "indexed_items_per_second": sharded[4],
        "linear_items_per_second": sharded_linear,
        "speedup": (sharded[4] / sharded_linear)
                   if sharded.get(4) and sharded_linear else None,
        "required_speedup": 5.0,
    },
    "event_delivery": {
        "service_burst_1000_items_per_second":
            items_per_second(delivery, "BM_UserEventBurstDispatch/1000"),
        "bus_raw_1000_items_per_second":
            items_per_second(delivery, "BM_EventBusRawDispatch/1000"),
    },
    # Per-application ordered queues on the ThreadPoolExecutor vs the
    # serial FIFO, 8 applications with blocking (sleep-modelled) handler
    # latency. The async layer overlaps the latency across applications,
    # so it must clear >=2x even on a single-core host.
    "event_delivery_async": {
        "async_items_per_second":
            items_per_second(delivery, "BM_MultiAppDeliveryAsync/8/real_time"),
        "serial_items_per_second":
            items_per_second(delivery,
                             "BM_MultiAppDeliverySerial/8/real_time"),
        "speedup": None,
        "required_speedup": 2.0,
    },
    # Same comparison with *actuating* handlers: every delivery performs
    # two OrcaContext actuations (staged + marshalled to the publishing
    # thread on the pool path, immediate on the serial path). Staging
    # must not eat the async win.
    "event_delivery_async_actuating": {
        "async_items_per_second":
            items_per_second(
                delivery, "BM_MultiAppDeliveryActuatingAsync/8/real_time"),
        "serial_items_per_second":
            items_per_second(
                delivery, "BM_MultiAppDeliveryActuatingSerial/8/real_time"),
        "speedup": None,
        "required_speedup": 2.0,
    },
}
for label in ("event_delivery_async", "event_delivery_async_actuating"):
    async_ips = result[label]["async_items_per_second"]
    serial_ips = result[label]["serial_items_per_second"]
    if async_ips and serial_ips:
        result[label]["speedup"] = async_ips / serial_ips

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
failed = False
for label in ("scope_matching", "scope_matching_churn",
              "scope_matching_sharded", "event_delivery_async",
              "event_delivery_async_actuating"):
    speedup = result[label]["speedup"]
    required = result[label]["required_speedup"]
    print(f"{label} speedup: "
          + (f"{speedup:.1f}x" if speedup else "n/a")
          + f" (required {required:g}x)")
    if speedup is not None and speedup < required:
        print(f"FAIL: {label} speedup below required {required:g}x",
              file=sys.stderr)
        failed = True
if failed:
    sys.exit(1)
EOF
