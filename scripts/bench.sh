#!/usr/bin/env bash
# Runs the event-routing benchmarks and emits BENCH_event_routing.json at
# the repo root — the perf trajectory record for the EventBus +
# ScopeRegistry delivery pipeline (see ARCHITECTURE.md).
#
# Usage: scripts/bench.sh [--only KEY] [build-dir]   (default: build)
#
# --only reruns a single gated key and merge-updates its section of the
# recorded JSON, leaving every other section untouched. Keys:
#   scope_matching | scope_matching_churn | scope_matching_sharded
#   scope_matching_zipf | scope_matching_plan
#   event_delivery | event_delivery_async | event_delivery_async_actuating
#   latency_slo

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

ONLY=""
BUILD_DIR=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --only)
      [[ $# -ge 2 ]] || { echo "--only needs a key" >&2; exit 2; }
      ONLY="$2"
      shift 2
      ;;
    *)
      BUILD_DIR="$1"
      shift
      ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build}"

# Which benchmark binary feeds each gated key.
RUN_SCOPE=0 RUN_SCALE=0 RUN_PLAN=0 RUN_DELIVERY=0 RUN_LATENCY=0
case "$ONLY" in
  "")
    RUN_SCOPE=1 RUN_SCALE=1 RUN_PLAN=1 RUN_DELIVERY=1 RUN_LATENCY=1 ;;
  scope_matching|scope_matching_churn|scope_matching_sharded)
    RUN_SCOPE=1 ;;
  scope_matching_zipf)
    RUN_SCALE=1 ;;
  scope_matching_plan)
    RUN_PLAN=1 ;;
  event_delivery|event_delivery_async|event_delivery_async_actuating)
    RUN_DELIVERY=1 ;;
  latency_slo)
    RUN_LATENCY=1 ;;
  *)
    echo "unknown --only key: $ONLY" >&2
    exit 2
    ;;
esac

TARGETS=()
(( RUN_SCOPE ))    && TARGETS+=(bench_scope_matching)
(( RUN_SCALE ))    && TARGETS+=(bench_scope_scale)
(( RUN_PLAN ))     && TARGETS+=(bench_predicate_plan)
(( RUN_DELIVERY )) && TARGETS+=(bench_event_delivery)

missing=0
for target in "${TARGETS[@]:+${TARGETS[@]}}"; do
  [[ -x "$BUILD_DIR/$target" ]] || missing=1
done
if (( missing )); then
  echo "building benches in $BUILD_DIR ..." >&2
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j --target "${TARGETS[@]}"
fi

SCOPE_JSON="$BUILD_DIR/bench_scope_matching.json"
DELIVERY_JSON="$BUILD_DIR/bench_event_delivery.json"
SCALE_JSON="$BUILD_DIR/bench_scope_scale.json"
PLAN_JSON="$BUILD_DIR/bench_predicate_plan.json"

if (( RUN_SCOPE )); then
  "$BUILD_DIR/bench_scope_matching" \
    --benchmark_filter='Registry|Sharded' \
    --benchmark_format=json >"$SCOPE_JSON"
fi
if (( RUN_DELIVERY )); then
  "$BUILD_DIR/bench_event_delivery" \
    --benchmark_filter='BM_UserEventBurstDispatch|BM_EventBusRawDispatch|BM_MultiAppDelivery' \
    --benchmark_format=json >"$DELIVERY_JSON"
fi
if (( RUN_SCALE )); then
  "$BUILD_DIR/bench_scope_scale" \
    --benchmark_format=json >"$SCALE_JSON"
fi
if (( RUN_PLAN )); then
  "$BUILD_DIR/bench_predicate_plan" \
    --benchmark_filter='BM_Plan' \
    --benchmark_format=json >"$PLAN_JSON"
fi

if (( RUN_SCOPE || RUN_SCALE || RUN_PLAN || RUN_DELIVERY )); then
  RUN_SCOPE=$RUN_SCOPE RUN_SCALE=$RUN_SCALE RUN_PLAN=$RUN_PLAN \
  RUN_DELIVERY=$RUN_DELIVERY \
  python3 - "$SCOPE_JSON" "$DELIVERY_JSON" "$SCALE_JSON" "$PLAN_JSON" \
    "$REPO_ROOT/BENCH_event_routing.json" <<'EOF'
import json
import os
import sys

scope_path, delivery_path, scale_path, plan_path, out_path = sys.argv[1:6]
run_scope = os.environ["RUN_SCOPE"] == "1"
run_scale = os.environ["RUN_SCALE"] == "1"
run_plan = os.environ["RUN_PLAN"] == "1"
run_delivery = os.environ["RUN_DELIVERY"] == "1"

def load(path):
    with open(path) as f:
        return json.load(f)["benchmarks"]

def require(benches, name, field="items_per_second"):
    """Value of `field` for bench `name` (exact, or `name` plus
    benchmark-appended modifiers like /iterations:N/real_time). A missing
    bench or field is a recording bug — fail with the key, not a
    KeyError."""
    for bench in benches:
        if bench["name"] == name or bench["name"].startswith(name + "/"):
            if bench.get("error_occurred"):
                sys.exit(f"FAIL: benchmark '{bench['name']}' errored: "
                         f"{bench.get('error_message', 'unknown')}")
            if field not in bench:
                sys.exit(f"FAIL: benchmark '{bench['name']}' reported no "
                         f"'{field}' (counter renamed or benchmark "
                         "errored?)")
            return bench[field]
    sys.exit(f"FAIL: benchmark '{name}' missing from benchmark output "
             "(renamed, filtered out, or failed to run?)")

# Merge-update: sections not recomputed this run keep their recorded
# values (supports `--only KEY` partial reruns).
result = {}
if os.path.exists(out_path):
    with open(out_path) as f:
        result = json.load(f)

result["bench"] = "event_routing"
result["description"] = (
    "ScopeRegistry indexed routing vs preserved linear-scan reference at "
    "1k subscopes x 10k samples (static and register/match/unregister "
    "churn workloads), ShardedScopeRegistry multi-app SRM rounds at "
    "1/2/4/8 shards, million-scope Zipf-skew matching + delivery latency, "
    "predicate-planner ordered intersection vs fixed-order candidate "
    "merge, plus EventBus dispatch throughput (events/s)")

computed = []

if run_scope:
    scope = load(scope_path)
    indexed = require(scope, "BM_RegistryIndexed/1000/10000")
    linear = require(scope, "BM_RegistryLinearScan/1000/10000")
    churn_indexed = require(scope, "BM_RegistryChurnIndexed/1000/10000")
    churn_linear = require(scope, "BM_RegistryChurnLinear/1000/10000")
    sharded = {
        n: require(scope, f"BM_ShardedSnapshot/{n}/1000/10000/real_time")
        for n in (1, 2, 4, 8)
    }
    sharded_linear = require(scope, "BM_ShardedSnapshotLinear/1000/10000")
    result["scope_matching"] = {
        "indexed_items_per_second": indexed,
        "linear_items_per_second": linear,
        "speedup": indexed / linear,
        "required_speedup": 5.0,
    }
    result["scope_matching_churn"] = {
        "indexed_items_per_second": churn_indexed,
        "linear_items_per_second": churn_linear,
        "speedup": churn_indexed / churn_linear,
        "required_speedup": 5.0,
    }
    # One whole multi-app SRM round (8 apps, 1k subscopes x 10k samples)
    # matched through ShardedScopeRegistry with the shard-parallel gate
    # forced open (config-driven ParallelPolicy), vs the linear scan over
    # the same subscope population. The 4-shard case is gated.
    result["scope_matching_sharded"] = {
        "sharded_items_per_second": {
            f"shards_{n}": value for n, value in sharded.items()
        },
        "indexed_items_per_second": sharded[4],
        "linear_items_per_second": sharded_linear,
        "speedup": sharded[4] / sharded_linear,
        "required_speedup": 5.0,
    }
    computed += ["scope_matching", "scope_matching_churn",
                 "scope_matching_sharded"]

if run_scale:
    scale = load(scale_path)
    zipf_sticky = "BM_ZipfMatchSticky/16/20000"
    zipf_rebalanced = "BM_ZipfMatchRebalanced/16/20000"
    zipf_unweighted = "BM_ZipfDeliveryUnweighted/100000"
    zipf_weighted = "BM_ZipfDeliveryWeighted/100000"
    unweighted_p99 = require(scale, zipf_unweighted, "p99_us")
    weighted_p99 = require(scale, zipf_weighted, "p99_us")
    # Million-scope scale under Zipf(s=1.1) skew: 1M subscopes across 10k
    # applications. Matching compares sticky hash placement against
    # dynamic hot-shard splitting (hot_shard_share = the hottest shard's
    # fraction of match volume; its floor is the head application's
    # traffic share). Delivery pushes 100k skewed events through the
    # async EventBus on a worker pool: FIFO one-at-a-time vs weighted
    # dispatch with 64-delivery batching, gated on p99 publish-to-handler
    # latency (lower is better; speedup = unweighted_p99/weighted_p99).
    result["scope_matching_zipf"] = {
        "scopes": 1000000,
        "applications": 10000,
        "zipf_s": 1.1,
        "sticky_items_per_second": require(scale, zipf_sticky),
        "rebalanced_items_per_second": require(scale, zipf_rebalanced),
        "sticky_hot_shard_share": require(scale, zipf_sticky,
                                          "hot_shard_share"),
        "rebalanced_hot_shard_share": require(scale, zipf_rebalanced,
                                              "hot_shard_share"),
        "reshards": require(scale, zipf_rebalanced, "reshards"),
        "migrated_subscopes": require(scale, zipf_rebalanced, "migrated"),
        "delivery_unweighted_p50_us": require(scale, zipf_unweighted,
                                              "p50_us"),
        "delivery_unweighted_p99_us": unweighted_p99,
        "delivery_weighted_p50_us": require(scale, zipf_weighted, "p50_us"),
        "delivery_weighted_p99_us": weighted_p99,
        "speedup": unweighted_p99 / weighted_p99,
        "required_speedup": 2.0,
    }
    computed.append("scope_matching_zipf")

if run_plan:
    plan = load(plan_path)
    planned = require(plan, "BM_PlanMatchPlanned/8000/2000/2000")
    fixed = require(plan, "BM_PlanMatchFixedOrder/8000/2000/2000")
    # Predicate planner (src/plan/): cardinality-ordered intersection
    # plans vs the fixed metric→application candidate merge on a
    # multi-tenant population (8k subscopes, 2k applications, 4 hot
    # metric names — hot metric buckets hold ~2k candidates while
    # application buckets hold ~4). Results are byte-identical; the
    # bench verifies planned == MatchedKeysLinear before timing. The
    # churn pair prices plan recompilation into the planned path.
    result["scope_matching_plan"] = {
        "planned_items_per_second": planned,
        "fixed_order_items_per_second": fixed,
        "linear_items_per_second":
            require(plan, "BM_PlanMatchLinear/8000/2000/2000"),
        "churn_planned_items_per_second":
            require(plan, "BM_PlanChurnPlanned/8000/2000/2000"),
        "churn_fixed_order_items_per_second":
            require(plan, "BM_PlanChurnFixedOrder/8000/2000/2000"),
        "speedup": planned / fixed,
        "required_speedup": 2.0,
    }
    computed.append("scope_matching_plan")

if run_delivery:
    delivery = load(delivery_path)
    result["event_delivery"] = {
        "service_burst_1000_items_per_second":
            require(delivery, "BM_UserEventBurstDispatch/1000"),
        "bus_raw_1000_items_per_second":
            require(delivery, "BM_EventBusRawDispatch/1000"),
    }
    # Per-application ordered queues on the ThreadPoolExecutor vs the
    # serial FIFO, 8 applications with blocking (sleep-modelled) handler
    # latency. The async layer overlaps the latency across applications,
    # so it must clear >=2x even on a single-core host.
    result["event_delivery_async"] = {
        "async_items_per_second":
            require(delivery, "BM_MultiAppDeliveryAsync/8/real_time"),
        "serial_items_per_second":
            require(delivery, "BM_MultiAppDeliverySerial/8/real_time"),
        "speedup": None,
        "required_speedup": 2.0,
    }
    # Same comparison with *actuating* handlers: every delivery performs
    # two OrcaContext actuations (staged + marshalled to the publishing
    # thread on the pool path, immediate on the serial path). Staging
    # must not eat the async win.
    result["event_delivery_async_actuating"] = {
        "async_items_per_second":
            require(delivery,
                    "BM_MultiAppDeliveryActuatingAsync/8/real_time"),
        "serial_items_per_second":
            require(delivery,
                    "BM_MultiAppDeliveryActuatingSerial/8/real_time"),
        "speedup": None,
        "required_speedup": 2.0,
    }
    for label in ("event_delivery_async", "event_delivery_async_actuating"):
        async_ips = result[label]["async_items_per_second"]
        serial_ips = result[label]["serial_items_per_second"]
        result[label]["speedup"] = async_ips / serial_ips
    computed += ["event_delivery_async", "event_delivery_async_actuating"]

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
failed = False
for label in computed:
    if "speedup" not in result[label]:
        continue
    speedup = result[label]["speedup"]
    required = result[label]["required_speedup"]
    print(f"{label} speedup: "
          + (f"{speedup:.1f}x" if speedup else "n/a")
          + f" (required {required:g}x)")
    if speedup is not None and speedup < required:
        print(f"FAIL: {label} speedup below required {required:g}x",
              file=sys.stderr)
        failed = True
if failed:
    sys.exit(1)
EOF
fi

# --- Detection→actuation latency SLOs (soak scenarios) ----------------------
# Runs the three soak scenarios on the serial oracle via bench_latency_slo
# and gates the per-category reaction quantiles against the scenario SLO
# table (mirrors src/harness/slo_report.cc; all times are virtual seconds).

if (( ! RUN_LATENCY )); then
  exit 0
fi

if [[ ! -x "$BUILD_DIR/bench_latency_slo" ]]; then
  echo "building bench_latency_slo in $BUILD_DIR ..." >&2
  cmake --build "$BUILD_DIR" -j --target bench_latency_slo
fi

LATENCY_JSON="$BUILD_DIR/bench_latency_slo.json"
"$BUILD_DIR/bench_latency_slo" --benchmark_format=json >"$LATENCY_JSON"

python3 - "$LATENCY_JSON" "$REPO_ROOT/BENCH_latency_slo.json" <<'EOF'
import json
import sys

latency_path, out_path = sys.argv[1:3]

with open(latency_path) as f:
    benches = json.load(f)["benchmarks"]

SCENARIOS = {
    "iot_fleet": "BM_IotFleetReaction",
    "fraud_pipeline": "BM_FraudPipelineReaction",
    "geo_trending": "BM_GeoTrendingReaction",
}

# category -> (p50 max, p99 max, min sample count); must match
# DefaultScenarioSlos() in src/harness/slo_report.cc.
SLOS = {
    "operatorMetric": (6.0, 12.0, 2),
    "peFailure": (2.0, 4.0, 1),
    "start": (2.0, 4.0, 1),
}

def require(name, field):
    """Counter `field` of bench `name`. A missing bench or counter is a
    recording bug — fail with the key, not a KeyError."""
    for bench in benches:
        if bench["name"] == name or bench["name"].startswith(name + "/"):
            if bench.get("error_occurred"):
                sys.exit(f"FAIL: benchmark '{name}' errored: "
                         f"{bench.get('error_message', 'unknown')} "
                         "(scenario invariants violated?)")
            if field not in bench:
                sys.exit(f"FAIL: benchmark '{name}' reported no '{field}' "
                         "(category never recorded a reaction sample, or "
                         "counter renamed?)")
            return bench[field]
    sys.exit(f"FAIL: benchmark '{name}' missing from benchmark output "
             "(renamed, filtered out, or failed to run?)")

failed = False
result = {
    "bench": "latency_slo",
    "description": "Detection→actuation reaction latency of the three soak "
                   "scenarios (iot_fleet elastic scaling, fraud_pipeline "
                   "model hot-swap, geo_trending cross-app dependencies) on "
                   "the serial oracle at the full 180 s duration with the "
                   "fault script on. Quantiles are virtual seconds from the "
                   "detection stamp (SRM collection / SAM failure "
                   "detection) to the actuation landing; the per-category "
                   "SLO table mirrors src/harness/slo_report.cc.",
    "slos": {
        category: {"p50_max_s": p50, "p99_max_s": p99, "min_count": count}
        for category, (p50, p99, count) in SLOS.items()
    },
    "scenarios": {},
}
for scenario, bench_name in SCENARIOS.items():
    entry = {"events_delivered": require(bench_name, "events")}
    for category, (p50_max, p99_max, min_count) in SLOS.items():
        count = require(bench_name, f"{category}_count")
        p50 = require(bench_name, f"{category}_p50_s")
        p99 = require(bench_name, f"{category}_p99_s")
        entry[category] = {
            "count": count,
            "p50_s": p50,
            "p99_s": p99,
            "max_s": require(bench_name, f"{category}_max_s"),
        }
        print(f"{scenario}/{category}: p50 {p50:.3f}s p99 {p99:.3f}s "
              f"({count:.0f} samples; SLO {p50_max:g}/{p99_max:g})")
        if count < min_count:
            print(f"FAIL: {scenario}/{category} recorded {count:.0f} "
                  f"samples, need >= {min_count}", file=sys.stderr)
            failed = True
        if p50 > p50_max:
            print(f"FAIL: {scenario}/{category} p50 {p50:.3f}s exceeds "
                  f"SLO {p50_max:g}s", file=sys.stderr)
            failed = True
        if p99 > p99_max:
            print(f"FAIL: {scenario}/{category} p99 {p99:.3f}s exceeds "
                  f"SLO {p99_max:g}s", file=sys.stderr)
            failed = True
    result["scenarios"][scenario] = entry

with open(out_path, "w") as f:
    json.dump(result, f, indent=2)
    f.write("\n")

print(f"wrote {out_path}")
if failed:
    sys.exit(1)
EOF
