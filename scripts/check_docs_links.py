#!/usr/bin/env python3
"""Link-checks the repo's markdown suite.

Two passes over every tracked .md file:

1. Markdown links: every relative `[text](target)` must resolve to an
   existing file or directory (external http(s)/mailto links and pure
   #anchor links are skipped; a #fragment on a relative link is stripped
   before checking).
2. File references: every backticked repo path (`src/...`, `tests/...`,
   `bench/...`, `docs/...`, `examples/...`, `scripts/...`, .github
   workflows, and repo-root files like ARCHITECTURE.md) must exist.
   `X.{h,cc}` brace shorthand expands to both members. This is what
   keeps docs/PAPER_MAP.md honest when files move.

Exits non-zero listing every dangling reference.
"""

import pathlib
import re
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Backticked repo-relative path, optionally with {a,b} brace shorthand.
FILE_REF = re.compile(
    r"`((?:src|tests|bench|docs|examples|scripts|\.github)/[\w./{},-]+"
    r"|[A-Z][\w.-]*\.(?:md|json|txt))`"
)


def tracked_markdown():
    out = subprocess.run(
        ["git", "ls-files", "*.md"],
        cwd=REPO_ROOT, check=True, capture_output=True, text=True,
    ).stdout
    return [REPO_ROOT / line for line in out.splitlines() if line]


def expand_braces(ref):
    """`a/b.{h,cc}` -> [`a/b.h`, `a/b.cc`] (single level is enough)."""
    match = re.search(r"\{([^}]*)\}", ref)
    if not match:
        return [ref]
    head, tail = ref[: match.start()], ref[match.end():]
    return [head + option + tail for option in match.group(1).split(",")]


def check_file(md_path):
    errors = []
    text = md_path.read_text(encoding="utf-8")
    rel = md_path.relative_to(REPO_ROOT)

    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (md_path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: dangling link ({target})")

    for ref in FILE_REF.findall(text):
        for candidate in expand_braces(ref):
            if not (REPO_ROOT / candidate).exists():
                errors.append(f"{rel}: dangling file reference (`{candidate}`)")

    return errors


def main():
    errors = []
    for md_path in tracked_markdown():
        errors.extend(check_file(md_path))
    if errors:
        print(f"{len(errors)} dangling reference(s):", file=sys.stderr)
        for error in errors:
            print(f"  {error}", file=sys.stderr)
        return 1
    print(f"docs link check OK ({len(tracked_markdown())} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
