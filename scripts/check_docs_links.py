#!/usr/bin/env python3
"""Link-checks the repo's markdown suite.

Two passes over every tracked .md file:

1. Markdown links: every relative `[text](target)` must resolve to an
   existing file or directory (external http(s)/mailto links and pure
   #anchor links are skipped; a #fragment on a relative link is stripped
   before checking).
2. File references: every backticked repo path (`src/...`, `tests/...`,
   `bench/...`, `docs/...`, `examples/...`, `scripts/...`, .github
   workflows, and repo-root files like ARCHITECTURE.md) must exist.
   `X.{h,cc}` brace shorthand expands to both members. This is what
   keeps docs/PAPER_MAP.md honest when files move.

Exits non-zero listing every dangling reference.
"""

import re
import sys

import lint_common

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Backticked repo-relative path, optionally with {a,b} brace shorthand.
FILE_REF = re.compile(
    r"`((?:src|tests|bench|docs|examples|scripts|\.github)/[\w./{},-]+"
    r"|[A-Z][\w.-]*\.(?:md|json|txt))`"
)


def expand_braces(ref):
    """`a/b.{h,cc}` -> [`a/b.h`, `a/b.cc`] (single level is enough)."""
    match = re.search(r"\{([^}]*)\}", ref)
    if not match:
        return [ref]
    head, tail = ref[: match.start()], ref[match.end():]
    return [head + option + tail for option in match.group(1).split(",")]


def check_file(md_path):
    errors = []
    text = lint_common.read_text(md_path)
    if text is None:
        return errors
    rel = md_path.relative_to(lint_common.REPO_ROOT)

    for target in MD_LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (md_path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{rel}: dangling link ({target})")

    for ref in FILE_REF.findall(text):
        for candidate in expand_braces(ref):
            if not (lint_common.REPO_ROOT / candidate).exists():
                errors.append(f"{rel}: dangling file reference (`{candidate}`)")

    return errors


def main():
    markdown = list(lint_common.tracked_files(suffixes=(".md",)))
    errors = []
    for md_path in markdown:
        errors.extend(check_file(md_path))
    return lint_common.report(
        "docs link check", errors, f"{len(markdown)} markdown files",
        "dangling reference(s)")


if __name__ == "__main__":
    sys.exit(main())
